//! Server load bench: replays an open-loop schedule against `hgp-server`
//! and emits the machine-readable `BENCH_server.json`.
//!
//! Two arms share one deterministic schedule (see
//! `hgp_workloads::openloop`): **event** runs the default readiness-loop
//! front end, **legacy** the thread-per-connection mode — same solver
//! pool, same cache sizing, same request bytes. The legacy arm keeps a
//! modest connection count (each connection is an OS thread); the event
//! arm opens `conn_multiplier` times as many, which is exactly the claim
//! the committed artifact certifies: the event front end sustains ≥ 4×
//! the concurrent-connection count at an equal (within tolerance) p99.
//!
//! The driving client is itself a poll-multiplexed non-blocking loop
//! (reusing the server's `netpoll` shim), so thousands of client
//! connections cost one thread. Requests are injected at their scheduled
//! arrival times regardless of completions — open loop — and every
//! reply is matched back to its request through per-connection FIFO
//! order (the protocol answers one line per line, in order).
//!
//! Reported per arm: service-time and open-loop latency percentiles
//! (p50/p99/p999), achieved throughput, client-observed reply mix
//! (`cache=hit/near/shared` counts), the server-side coalescing ratio
//! (`cache.coalesced / (coalesced + builds)` over the run) and worker
//! utilization (`Δpool.busy-us / (workers × wall)`), both read from
//! `stats2` — which the event loop answers inline even while every
//! worker is busy, so scraping under load cannot deadlock the bench.

use crate::json::Json;
use hgp_workloads::openloop::{open_loop_schedule, warm_lines, OpenLoopOpts};

/// Schema tag embedded in every emitted report.
pub const SCHEMA: &str = "hgp-bench-server/v1";

/// Tolerated event-vs-legacy p99 slack for the capacity claim: the
/// event arm "holds an equal p99" when `event_p99 ≤ legacy_p99 × 1.25`.
pub const P99_TOLERANCE: f64 = 1.25;

/// Which front-end arms to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Arms {
    /// Event-driven front end only.
    Event,
    /// Legacy thread-per-connection only.
    Legacy,
    /// Both, enabling the capacity A/B section.
    Both,
}

/// Knobs for [`run_server_bench`].
#[derive(Clone, Debug)]
pub struct ServerBenchOpts {
    /// Solver worker threads in the server under test.
    pub workers: usize,
    /// Concurrent client connections for the legacy arm.
    pub legacy_conns: usize,
    /// Event-arm connections = `legacy_conns × conn_multiplier`.
    pub conn_multiplier: usize,
    /// Open-loop schedule parameters (rate, mix, request count).
    pub load: OpenLoopOpts,
    /// Schedule seed (same seed ⇒ byte-identical load on both arms).
    pub seed: u64,
    /// Which arms to run.
    pub arms: Arms,
}

impl ServerBenchOpts {
    /// The configuration behind the committed `BENCH_server.json`:
    /// 1024 event connections vs 256 legacy connections. The target
    /// rate is kept comfortably below pool capacity — at saturation an
    /// open-loop p99 measures a random-walking backlog rather than the
    /// front end, and the CI regression gate would be pure noise.
    pub fn standard() -> Self {
        Self {
            workers: 2,
            legacy_conns: 256,
            conn_multiplier: 4,
            load: OpenLoopOpts {
                requests: 900,
                rps: 300.0,
                ..Default::default()
            },
            seed: 42,
            arms: Arms::Both,
        }
    }

    /// A seconds-scale variant for tests.
    pub fn tiny() -> Self {
        Self {
            workers: 2,
            legacy_conns: 16,
            conn_multiplier: 4,
            load: OpenLoopOpts {
                requests: 160,
                rps: 400.0,
                ..Default::default()
            },
            seed: 42,
            arms: Arms::Both,
        }
    }

    fn event_conns(&self) -> usize {
        self.legacy_conns * self.conn_multiplier.max(1)
    }
}

/// Latency percentiles in microseconds.
#[derive(Clone, Debug)]
pub struct Pcts {
    /// Median.
    pub p50_us: f64,
    /// 99th percentile.
    pub p99_us: f64,
    /// 99.9th percentile.
    pub p999_us: f64,
    /// Maximum.
    pub max_us: f64,
}

impl Pcts {
    fn from_sorted(sorted_us: &[u64]) -> Pcts {
        let pick = |q: f64| -> f64 {
            if sorted_us.is_empty() {
                return 0.0;
            }
            let idx = ((sorted_us.len() as f64 * q).ceil() as usize).clamp(1, sorted_us.len()) - 1;
            sorted_us[idx] as f64
        };
        Pcts {
            p50_us: pick(0.50),
            p99_us: pick(0.99),
            p999_us: pick(0.999),
            max_us: sorted_us.last().copied().unwrap_or(0) as f64,
        }
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("p50_us", Json::Num(self.p50_us)),
            ("p99_us", Json::Num(self.p99_us)),
            ("p999_us", Json::Num(self.p999_us)),
            ("max_us", Json::Num(self.max_us)),
        ])
    }
}

/// Measurements from one front-end arm.
#[derive(Clone, Debug)]
pub struct ArmReport {
    /// `"event"` or `"legacy"`.
    pub mode: String,
    /// Concurrent client connections held open for the whole run.
    pub conns: usize,
    /// Requests completed (always the full schedule on success).
    pub requests: usize,
    /// Wall-clock seconds from first injection to last reply.
    pub duration_s: f64,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Reply-to-send latency (excludes client-side queueing).
    pub service: Pcts,
    /// Reply-to-scheduled-arrival latency (true open-loop latency).
    pub latency: Pcts,
    /// `err …` replies observed (0 on a healthy run).
    pub errors: u64,
    /// Client-observed `cache=hit` replies.
    pub replies_hit: u64,
    /// Client-observed `cache=near` replies.
    pub replies_near: u64,
    /// Client-observed `cache=shared` replies (coalesced followers).
    pub replies_shared: u64,
    /// Server-side distribution builds during the run (`cache.builds`).
    pub builds: u64,
    /// Server-side coalesced solves during the run (`cache.coalesced`).
    pub coalesced: u64,
    /// `coalesced / (coalesced + builds)`: the fraction of cold-path
    /// demand served by joining an in-flight build.
    pub coalescing_ratio: f64,
    /// `Δpool.busy-us / (workers × wall-us)` over the measured window.
    pub worker_utilization: f64,
}

impl ArmReport {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("mode", Json::Str(self.mode.clone())),
            ("conns", Json::Num(self.conns as f64)),
            ("requests", Json::Num(self.requests as f64)),
            ("duration_s", Json::Num(self.duration_s)),
            ("throughput_rps", Json::Num(self.throughput_rps)),
            ("service", self.service.to_json()),
            ("latency", self.latency.to_json()),
            ("errors", Json::Num(self.errors as f64)),
            ("replies_hit", Json::Num(self.replies_hit as f64)),
            ("replies_near", Json::Num(self.replies_near as f64)),
            ("replies_shared", Json::Num(self.replies_shared as f64)),
            ("builds", Json::Num(self.builds as f64)),
            ("coalesced", Json::Num(self.coalesced as f64)),
            ("coalescing_ratio", Json::Num(self.coalescing_ratio)),
            ("worker_utilization", Json::Num(self.worker_utilization)),
        ])
    }
}

/// The full report: per-arm measurements plus the A/B capacity section.
#[derive(Clone, Debug)]
pub struct ServerBenchReport {
    /// The options the run used.
    pub opts: ServerBenchOpts,
    /// One entry per arm run.
    pub arms: Vec<ArmReport>,
}

impl ServerBenchReport {
    fn arm(&self, mode: &str) -> Option<&ArmReport> {
        self.arms.iter().find(|a| a.mode == mode)
    }

    /// Renders the report as a JSON document.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("schema", Json::Str(SCHEMA.to_string())),
            (
                "config",
                Json::obj(vec![
                    ("workers", Json::Num(self.opts.workers as f64)),
                    ("seed", Json::Num(self.opts.seed as f64)),
                    ("requests", Json::Num(self.opts.load.requests as f64)),
                    ("target_rps", Json::Num(self.opts.load.rps)),
                    (
                        "mix",
                        Json::obj(vec![
                            ("hit", Json::Num(self.opts.load.hit_frac)),
                            ("near", Json::Num(self.opts.load.near_frac)),
                            ("coalesce", Json::Num(self.opts.load.coalesce_frac)),
                            (
                                "coalesce_burst",
                                Json::Num(self.opts.load.coalesce_burst as f64),
                            ),
                        ]),
                    ),
                ]),
            ),
            (
                "arms",
                Json::Arr(self.arms.iter().map(ArmReport::to_json).collect()),
            ),
        ];
        if let (Some(event), Some(legacy)) = (self.arm("event"), self.arm("legacy")) {
            let conn_ratio = event.conns as f64 / legacy.conns.max(1) as f64;
            let p99_ratio = if legacy.service.p99_us > 0.0 {
                event.service.p99_us / legacy.service.p99_us
            } else {
                1.0
            };
            pairs.push((
                "capacity",
                Json::obj(vec![
                    ("legacy_conns", Json::Num(legacy.conns as f64)),
                    ("event_conns", Json::Num(event.conns as f64)),
                    ("conn_ratio", Json::Num(conn_ratio)),
                    ("legacy_p99_us", Json::Num(legacy.service.p99_us)),
                    ("event_p99_us", Json::Num(event.service.p99_us)),
                    ("p99_ratio", Json::Num(p99_ratio)),
                    (
                        "claim_ok",
                        Json::Bool(conn_ratio >= 4.0 && p99_ratio <= P99_TOLERANCE),
                    ),
                ]),
            ));
        }
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }
}

fn num(doc: &Json, path: &[&str]) -> Result<f64, String> {
    doc.path(path)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing numeric field {}", path.join(".")))
}

fn arm_obj<'a>(doc: &'a Json, mode: &str) -> Result<&'a Json, String> {
    let Some(Json::Arr(arms)) = doc.get("arms") else {
        return Err("missing arms array".to_string());
    };
    arms.iter()
        .find(|a| a.path(&["mode"]).and_then(Json::as_str) == Some(mode))
        .ok_or_else(|| format!("no {mode} arm in report"))
}

/// Validates an emitted `BENCH_server.json` document: schema tag, an
/// event arm with zero errors and a strictly positive coalescing ratio,
/// and — when both arms are present — the ≥ 4×-connections-at-equal-p99
/// capacity claim (`capacity.claim_ok`).
pub fn validate(text: &str) -> Result<(), String> {
    let doc = Json::parse(text)?;
    match doc.get("schema").and_then(Json::as_str) {
        Some(s) if s == SCHEMA => {}
        other => return Err(format!("schema is {other:?}, want {SCHEMA:?}")),
    }
    let event = arm_obj(&doc, "event")?;
    let errors = num(event, &["errors"])?;
    if errors > 0.0 {
        return Err(format!("event arm saw {errors} error replies"));
    }
    let ratio = num(event, &["coalescing_ratio"])?;
    if ratio <= 0.0 {
        return Err("event arm shows no coalescing (ratio 0)".to_string());
    }
    let shared = num(event, &["replies_shared"])?;
    if shared <= 0.0 {
        return Err("event arm saw no cache=shared replies".to_string());
    }
    num(event, &["service", "p99_us"])?;
    num(event, &["latency", "p99_us"])?;
    if doc.get("capacity").is_some() {
        if num(&doc, &["capacity", "conn_ratio"])? < 4.0 {
            return Err("capacity: event arm ran fewer than 4x legacy connections".to_string());
        }
        if doc.path(&["capacity", "claim_ok"]).and_then(Json::as_bool) != Some(true) {
            return Err(format!(
                "capacity claim failed: event p99 {} vs legacy p99 {} (tolerance {P99_TOLERANCE}x)",
                num(&doc, &["capacity", "event_p99_us"])?,
                num(&doc, &["capacity", "legacy_p99_us"])?,
            ));
        }
    }
    Ok(())
}

/// The CI regression gate: compares a fresh measurement against the
/// committed baseline. Fails when the fresh event-arm service p99
/// regressed more than 25% (plus a 500 µs absolute floor that keeps
/// loopback jitter from tripping the gate on sub-millisecond tails), or
/// when the fresh run shows no coalescing or any error replies.
pub fn smoke_check(committed: &str, fresh: &ServerBenchReport) -> Result<(), String> {
    validate(committed)?;
    let doc = Json::parse(committed)?;
    let committed_p99 = num(arm_obj(&doc, "event")?, &["service", "p99_us"])?;
    let event = fresh
        .arm("event")
        .ok_or("fresh run has no event arm".to_string())?;
    if event.errors > 0 {
        return Err(format!(
            "fresh event arm saw {} error replies",
            event.errors
        ));
    }
    if event.coalescing_ratio <= 0.0 {
        return Err("fresh event arm shows no coalescing".to_string());
    }
    let limit = committed_p99 * 1.25 + 500.0;
    if event.service.p99_us > limit {
        return Err(format!(
            "event p99 regressed: fresh {:.0} us vs committed {:.0} us (limit {:.0} us)",
            event.service.p99_us, committed_p99, limit
        ));
    }
    Ok(())
}

/// Runs the configured arms and assembles the report.
#[cfg(unix)]
pub fn run_server_bench(opts: &ServerBenchOpts) -> Result<ServerBenchReport, String> {
    let mut arms = Vec::new();
    // legacy first: its result calibrates the capacity comparison, and
    // running the heavier event arm second keeps the page cache warm in
    // neither arm's favour (the schedule bytes are identical anyway)
    if matches!(opts.arms, Arms::Legacy | Arms::Both) {
        arms.push(engine::run_arm(opts, true)?);
    }
    if matches!(opts.arms, Arms::Event | Arms::Both) {
        arms.push(engine::run_arm(opts, false)?);
    }
    Ok(ServerBenchReport {
        opts: opts.clone(),
        arms,
    })
}

/// Stub for non-unix targets (the poll-multiplexed client and the event
/// front end both require the unix `netpoll` shim).
#[cfg(not(unix))]
pub fn run_server_bench(_opts: &ServerBenchOpts) -> Result<ServerBenchReport, String> {
    Err("the server bench requires a unix target".to_string())
}

#[cfg(unix)]
mod engine {
    use super::*;
    use hgp_server::netpoll::{poll_ready, PollEntry, POLLERR, POLLIN, POLLNVAL, POLLOUT};
    use hgp_server::{Server, ServerConfig};
    use std::collections::VecDeque;
    use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
    use std::net::TcpStream;
    use std::os::unix::io::AsRawFd;
    use std::time::{Duration, Instant};

    struct ClientConn {
        stream: TcpStream,
        wbuf: Vec<u8>,
        rbuf: Vec<u8>,
        /// Request indexes awaiting replies, in send order (the protocol
        /// answers one line per line, in order).
        inflight: VecDeque<usize>,
    }

    /// Sends one line on a blocking stream and reads the reply line.
    fn ask(
        stream: &mut TcpStream,
        reader: &mut BufReader<TcpStream>,
        line: &str,
    ) -> Result<String, String> {
        stream
            .write_all(format!("{line}\n").as_bytes())
            .map_err(|e| format!("send: {e}"))?;
        let mut reply = String::new();
        reader
            .read_line(&mut reply)
            .map_err(|e| format!("recv: {e}"))?;
        Ok(reply.trim_end().to_string())
    }

    fn stats2(addr: std::net::SocketAddr) -> Result<Vec<(String, u64)>, String> {
        let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
        let mut reader = BufReader::new(stream.try_clone().map_err(|e| format!("clone: {e}"))?);
        let reply = ask(&mut stream, &mut reader, "stats2")?;
        let body = reply
            .strip_prefix("ok ")
            .ok_or_else(|| format!("bad stats2 reply: {reply}"))?;
        Ok(body
            .split_whitespace()
            .filter_map(|kv| kv.split_once('='))
            .filter_map(|(k, v)| v.parse::<u64>().ok().map(|n| (k.to_string(), n)))
            .collect())
    }

    fn stat(snapshot: &[(String, u64)], key: &str) -> u64 {
        snapshot
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    pub(super) fn run_arm(opts: &ServerBenchOpts, legacy: bool) -> Result<ArmReport, String> {
        let mode = if legacy { "legacy" } else { "event" };
        let conns = if legacy {
            opts.legacy_conns
        } else {
            opts.event_conns()
        };
        let schedule = open_loop_schedule(opts.seed, &opts.load);
        let total = schedule.len();

        let server = Server::start(
            ServerConfig::builder()
                .addr("127.0.0.1:0")
                .workers(opts.workers)
                // open loop: the whole schedule may be in flight at once
                .queue_capacity(total.max(64))
                .parallelism(hgp_core::Parallelism::serial())
                .cache_capacity(64)
                .legacy_threads(legacy)
                .build(),
        )
        .map_err(|e| format!("start {mode} server: {e}"))?;
        let addr = server.addr();

        // closed-loop priming so hit/near traffic behaves as labelled
        {
            let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
            let mut reader = BufReader::new(stream.try_clone().map_err(|e| format!("clone: {e}"))?);
            for line in warm_lines(&opts.load) {
                let reply = ask(&mut stream, &mut reader, &line)?;
                if !reply.starts_with("ok ") {
                    return Err(format!("warm-up solve failed: {reply}"));
                }
            }
        }
        let before = stats2(addr)?;

        let mut clients: Vec<ClientConn> = Vec::with_capacity(conns);
        for _ in 0..conns {
            let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
            stream
                .set_nodelay(true)
                .and_then(|()| stream.set_nonblocking(true))
                .map_err(|e| format!("socket setup: {e}"))?;
            clients.push(ClientConn {
                stream,
                wbuf: Vec::new(),
                rbuf: Vec::new(),
                inflight: VecDeque::new(),
            });
        }

        let mut sent_us = vec![0u64; total];
        let mut done_us = vec![0u64; total];
        let mut errors = 0u64;
        let (mut hit, mut near, mut shared) = (0u64, 0u64, 0u64);
        let mut completed = 0usize;
        let mut next = 0usize; // next schedule entry to inject
        let start = Instant::now();
        let hard_deadline = start + Duration::from_secs(180);

        while completed < total {
            if Instant::now() > hard_deadline {
                return Err(format!(
                    "{mode} arm stalled: {completed}/{total} replies after 180 s"
                ));
            }
            let now_us = start.elapsed().as_micros() as u64;
            // inject every arrival that is due, round-robin over conns
            while next < total && schedule[next].at_us <= now_us {
                let conn = &mut clients[next % conns];
                conn.wbuf.extend_from_slice(schedule[next].line.as_bytes());
                conn.wbuf.push(b'\n');
                conn.inflight.push_back(next);
                sent_us[next] = now_us;
                next += 1;
            }

            let timeout_ms = if next < total {
                let gap_us = schedule[next].at_us.saturating_sub(now_us);
                (gap_us / 1000).clamp(0, 10) as i32
            } else {
                10
            };
            let mut entries: Vec<PollEntry> = clients
                .iter()
                .map(|c| {
                    let mut interest = POLLIN;
                    if !c.wbuf.is_empty() {
                        interest |= POLLOUT;
                    }
                    PollEntry::new(c.stream.as_raw_fd(), interest)
                })
                .collect();
            poll_ready(&mut entries, timeout_ms).map_err(|e| format!("poll: {e}"))?;

            let now_us = start.elapsed().as_micros() as u64;
            for (conn, entry) in clients.iter_mut().zip(&entries) {
                if entry.ready & (POLLERR | POLLNVAL) != 0 {
                    return Err(format!("{mode} arm: connection error mid-run"));
                }
                if entry.writable() && !conn.wbuf.is_empty() {
                    match conn.stream.write(&conn.wbuf) {
                        Ok(n) => {
                            conn.wbuf.drain(..n);
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {}
                        Err(e) => return Err(format!("{mode} arm write: {e}")),
                    }
                }
                if entry.readable() {
                    let mut chunk = [0u8; 16 * 1024];
                    loop {
                        match conn.stream.read(&mut chunk) {
                            Ok(0) => {
                                if !conn.inflight.is_empty() {
                                    return Err(format!(
                                        "{mode} arm: server closed with replies pending"
                                    ));
                                }
                                break;
                            }
                            Ok(n) => conn.rbuf.extend_from_slice(&chunk[..n]),
                            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                            Err(e) => return Err(format!("{mode} arm read: {e}")),
                        }
                    }
                    while let Some(pos) = conn.rbuf.iter().position(|&b| b == b'\n') {
                        let line: Vec<u8> = conn.rbuf.drain(..=pos).collect();
                        let line = String::from_utf8_lossy(&line[..line.len() - 1]);
                        let idx = conn
                            .inflight
                            .pop_front()
                            .ok_or_else(|| format!("{mode} arm: unsolicited reply {line}"))?;
                        done_us[idx] = now_us;
                        completed += 1;
                        if line.starts_with("err ") {
                            errors += 1;
                        } else if line.contains(" cache=shared") {
                            shared += 1;
                        } else if line.contains(" cache=hit") {
                            hit += 1;
                        } else if line.contains(" cache=near") {
                            near += 1;
                        }
                    }
                }
            }
        }

        let wall = start.elapsed();
        let after = stats2(addr)?;
        drop(clients);
        drop(server); // shuts down and joins

        let builds = stat(&after, "cache.builds") - stat(&before, "cache.builds");
        let coalesced = stat(&after, "cache.coalesced") - stat(&before, "cache.coalesced");
        let busy_us = stat(&after, "pool.busy-us") - stat(&before, "pool.busy-us");
        let wall_us = wall.as_micros() as f64;

        let mut service: Vec<u64> = (0..total).map(|i| done_us[i] - sent_us[i]).collect();
        service.sort_unstable();
        let mut latency: Vec<u64> = (0..total)
            .map(|i| done_us[i].saturating_sub(schedule[i].at_us))
            .collect();
        latency.sort_unstable();

        Ok(ArmReport {
            mode: mode.to_string(),
            conns,
            requests: total,
            duration_s: wall.as_secs_f64(),
            throughput_rps: total as f64 / wall.as_secs_f64(),
            service: Pcts::from_sorted(&service),
            latency: Pcts::from_sorted(&latency),
            errors,
            replies_hit: hit,
            replies_near: near,
            replies_shared: shared,
            builds,
            coalesced,
            coalescing_ratio: coalesced as f64 / (coalesced + builds).max(1) as f64,
            worker_utilization: busy_us as f64 / (opts.workers as f64 * wall_us),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_report(event_p99: f64, legacy_p99: f64, ratio: f64) -> ServerBenchReport {
        let arm = |mode: &str, conns: usize, p99: f64| ArmReport {
            mode: mode.to_string(),
            conns,
            requests: 100,
            duration_s: 1.0,
            throughput_rps: 100.0,
            service: Pcts {
                p50_us: p99 / 2.0,
                p99_us: p99,
                p999_us: p99 * 2.0,
                max_us: p99 * 3.0,
            },
            latency: Pcts {
                p50_us: p99 / 2.0,
                p99_us: p99,
                p999_us: p99 * 2.0,
                max_us: p99 * 3.0,
            },
            errors: 0,
            replies_hit: 50,
            replies_near: 10,
            replies_shared: if ratio > 0.0 { 7 } else { 0 },
            builds: 20,
            coalesced: (ratio * 20.0) as u64,
            coalescing_ratio: ratio,
            worker_utilization: 0.8,
        };
        ServerBenchReport {
            opts: ServerBenchOpts::tiny(),
            arms: vec![arm("legacy", 16, legacy_p99), arm("event", 64, event_p99)],
        }
    }

    #[test]
    fn report_round_trips_and_validates() {
        let report = fake_report(900.0, 1000.0, 0.25);
        let text = report.to_json().to_pretty();
        validate(&text).unwrap();
        let doc = Json::parse(&text).unwrap();
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SCHEMA));
        assert_eq!(
            doc.path(&["capacity", "conn_ratio"]).and_then(Json::as_f64),
            Some(4.0)
        );
        assert_eq!(
            doc.path(&["capacity", "claim_ok"]).and_then(Json::as_bool),
            Some(true)
        );
    }

    #[test]
    fn validation_rejects_broken_claims() {
        // no coalescing
        let text = fake_report(900.0, 1000.0, 0.0).to_json().to_pretty();
        assert!(validate(&text).unwrap_err().contains("coalescing"));
        // event p99 far above legacy: capacity claim fails
        let text = fake_report(5000.0, 1000.0, 0.25).to_json().to_pretty();
        assert!(validate(&text).unwrap_err().contains("capacity claim"));
        // wrong schema
        assert!(validate("{\"schema\": \"other/v9\"}").is_err());
    }

    #[test]
    fn smoke_gate_trips_on_p99_regression_only() {
        let committed = fake_report(2000.0, 2400.0, 0.25).to_json().to_pretty();
        // within 25% + floor: fine
        let fresh = fake_report(2400.0, 2400.0, 0.25);
        smoke_check(&committed, &fresh).unwrap();
        // far above: trips
        let fresh = fake_report(4000.0, 2400.0, 0.25);
        let err = smoke_check(&committed, &fresh).unwrap_err();
        assert!(err.contains("regressed"), "{err}");
        // regression gate also refuses a coalescing-free fresh run
        let fresh = fake_report(2000.0, 2400.0, 0.0);
        assert!(smoke_check(&committed, &fresh).is_err());
    }
}
