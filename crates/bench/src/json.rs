//! Minimal JSON tree, writer, and parser.
//!
//! The workspace deliberately vendors no serde; the bench harness needs
//! just enough JSON to emit `BENCH_solver.json` and for CI (and the smoke
//! test) to validate what was emitted. Objects preserve insertion order so
//! emitted files are stable and diffable across runs.

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always emitted in `f64` round-trip form).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object — ordered key/value pairs (no deduplication).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on objects (first match), `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Path lookup: `get("a").get("b")…` in one call.
    pub fn path(&self, keys: &[&str]) -> Option<&Json> {
        keys.iter().try_fold(self, |j, k| j.get(k))
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = |out: &mut String, n: usize| out.push_str(&"  ".repeat(n));
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    // shortest round-trip form; integers print bare
                    if *x == x.trunc() && x.abs() < 1e15 {
                        out.push_str(&format!("{}", *x as i64));
                    } else {
                        out.push_str(&format!("{x}"));
                    }
                } else {
                    // JSON has no Inf/NaN; emit null rather than garbage
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    pad(out, indent + 1);
                    Json::Str(k.clone()).write(out, indent + 1);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (strict enough for validation: rejects
    /// trailing garbage, unterminated strings, malformed numbers).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {} of {}",
            c as char,
            *pos,
            b.len()
        ))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                pairs.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // consume one UTF-8 scalar (multi-byte safe)
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
        *pos += 1;
    }
    let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    s.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number {s:?} at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = Json::obj(vec![
            ("name", Json::Str("bench".into())),
            ("ok", Json::Bool(true)),
            ("count", Json::Num(3.0)),
            ("ratio", Json::Num(1.875)),
            (
                "stages",
                Json::Arr(vec![Json::Str("dp".into()), Json::Null]),
            ),
            ("empty", Json::Obj(vec![])),
        ]);
        let text = doc.to_pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.get("name").and_then(Json::as_str), Some("bench"));
        assert_eq!(back.get("count").and_then(Json::as_f64), Some(3.0));
        assert_eq!(back.path(&["stages"]).unwrap(), doc.get("stages").unwrap());
    }

    #[test]
    fn escapes_and_unicode_survive() {
        let doc = Json::Str("tab\there \"quoted\" μs\n".into());
        let back = Json::parse(&doc.to_pretty()).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("\"open").is_err());
        assert!(Json::parse("12notanumber").is_err());
        assert!(Json::parse("{} trailing").is_err());
    }

    #[test]
    fn integers_emit_bare() {
        assert_eq!(Json::Num(42.0).to_pretty().trim(), "42");
        assert_eq!(Json::Num(0.5).to_pretty().trim(), "0.5");
        assert_eq!(Json::Num(f64::NAN).to_pretty().trim(), "null");
    }
}
