//! Counting global allocator for per-stage allocation telemetry.
//!
//! `BENCH_solver.json` reports how many heap allocations each solve stage
//! performs, so allocation regressions are as visible as time regressions.
//! The counter is a thin wrapper around [`System`] with two relaxed atomic
//! counters — cheap enough to leave on for the whole bench run.
//!
//! Only the `bench_solver` binary registers [`CountingAlloc`] as the global
//! allocator. Library consumers (unit tests, the experiment harness) run on
//! the default allocator, where [`allocation_snapshot`] stays at zero — the
//! JSON schema treats zero counts as "not measured", never as an error.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed allocator that counts calls and requested bytes.
///
/// Register in a binary with:
/// ```ignore
/// #[global_allocator]
/// static ALLOC: hgp_bench::alloc::CountingAlloc = hgp_bench::alloc::CountingAlloc;
/// ```
pub struct CountingAlloc;

// SAFETY: delegates every operation verbatim to `System`; the counters are
// side effects that never touch the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Cumulative `(calls, bytes)` since process start. Both stay `0` unless
/// [`CountingAlloc`] is the registered global allocator.
pub fn allocation_snapshot() -> (u64, u64) {
    (
        ALLOC_CALLS.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

/// Runs `f` and returns its result plus the `(calls, bytes)` allocated
/// while it ran (zeros when the counting allocator is not registered).
pub fn count_allocations<T>(f: impl FnOnce() -> T) -> (T, u64, u64) {
    let (c0, b0) = allocation_snapshot();
    let out = f();
    let (c1, b1) = allocation_snapshot();
    (out, c1 - c0, b1 - b0)
}
