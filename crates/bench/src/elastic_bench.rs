//! The elastic re-placement trajectory: `BENCH_elastic.json`.
//!
//! Replays an `hgp-workloads` demand-churn stream against a single
//! [`hgp_core::Session`] and, at every epoch, re-solves the same post-churn
//! state twice:
//!
//! * **warm** — on the live session, whose cached Räcke distribution stays
//!   valid across demand edits, so the re-solve skips the distribution
//!   stage and sweeps only the previously-winning tree;
//! * **cold** — on a discarded clone with `cold = true`, forcing the full
//!   rebuild-and-sweep pipeline (what a cacheless placer would pay).
//!
//! The emitted document records per-epoch wall times, committed costs and
//! churn for both arms, the aggregate warm-over-cold speedup, and a
//! cost-vs-churn **Pareto curve**: the final churned state rebuilt with a
//! naive round-robin placement (a failover restore), then resolved under
//! increasing move budgets — how much churn budget buys back how much
//! placement quality. [`validate`] enforces the
//! acceptance bars: every epoch must actually hit the warm path at a cost
//! no worse than [`WARM_COST_TOLERANCE`] times the cold arm's, the
//! aggregate speedup must reach [`MIN_WARM_SPEEDUP`], and the Pareto curve
//! must be monotone (more budget never costs more). [`smoke_check`] is the
//! CI gate: committed costs are deterministic for a fixed seed (compared
//! at [`SMOKE_COST_TOLERANCE`]), while the speedup — a dimensionless ratio,
//! but still timing-derived — gets the looser
//! [`SMOKE_SPEEDUP_TOLERANCE`]; raw wall times are never compared.

use crate::json::Json;
use crate::timed;
use hgp_core::{Assignment, ReplaceOptions, Session, Solve, SolverOptions};
use hgp_hierarchy::{presets, Hierarchy};
use hgp_workloads::{demand_churn, stream_dag, ChurnOpts, StreamOpts};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Schema tag emitted into (and required from) `BENCH_elastic.json`.
pub const SCHEMA: &str = "hgp-bench-elastic/1";

/// Acceptance bar on the aggregate `Σ cold_ms / Σ warm_ms` ratio: the warm
/// path must be at least this much faster than a from-scratch re-solve.
pub const MIN_WARM_SPEEDUP: f64 = 2.0;

/// Per-epoch cost slack the warm arm is allowed over the cold arm. A warm
/// re-solve sweeps only the previously-winning tree, so after demand drift
/// another tree may map slightly cheaper — but both arms still share the
/// FM and keep-previous candidates, which bounds the gap tightly.
pub const WARM_COST_TOLERANCE: f64 = 1.05;

/// Deterministic-cost regression tolerance for [`smoke_check`] (same role
/// as the scale bench's: absorbs representation noise, not algorithm
/// changes).
pub const SMOKE_COST_TOLERANCE: f64 = 1.02;

/// How far the freshly measured speedup may fall below the committed one
/// before [`smoke_check`] fails. Speedup is a within-run ratio, so machine
/// speed cancels, but scheduling noise does not — hence 25 %, and the
/// `bench_elastic --smoke` driver takes the best of two fresh runs.
pub const SMOKE_SPEEDUP_TOLERANCE: f64 = 1.25;

/// Workload and solver knobs for [`run_elastic_bench`].
#[derive(Clone, Debug)]
pub struct ElasticBenchOpts {
    /// Churn epochs to replay (each epoch = one batch + one re-solve).
    pub epochs: usize,
    /// Demand edits per epoch.
    pub batch: usize,
    /// Multiplicative demand jitter per edit (see
    /// [`hgp_workloads::ChurnOpts`]).
    pub jitter: f64,
    /// Streaming queries in the generated DAG.
    pub queries: usize,
    /// Stages per query.
    pub depth: usize,
    /// Maximum operators per stage.
    pub max_width: usize,
    /// Demand normalisation ceiling (keeps the instance feasible on the
    /// 16-leaf machine with drift headroom).
    pub max_demand: f64,
    /// Decomposition trees (the cold arm sweeps all of them; the warm arm
    /// sweeps one — this knob directly scales the gap being measured).
    pub trees: usize,
    /// Rounding grid units per leaf.
    pub units: u32,
    /// Workload + solver seed.
    pub seed: u64,
}

impl ElasticBenchOpts {
    /// The full committed configuration.
    pub fn standard() -> Self {
        Self {
            epochs: 8,
            batch: 24,
            jitter: 0.3,
            queries: 24,
            depth: 6,
            max_width: 4,
            max_demand: 0.08,
            trees: 8,
            units: 4,
            seed: 0xE1A5_2014,
        }
    }

    /// The CI variant. Identical to [`Self::standard`]: the whole replay is
    /// already CI-sized, and sharing the configuration is what makes the
    /// committed per-epoch costs deterministic anchors for
    /// [`smoke_check`].
    pub fn smoke() -> Self {
        Self::standard()
    }
}

/// One churn epoch: both arms re-solving the same post-churn state.
#[derive(Clone, Debug)]
pub struct EpochEntry {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Warm-arm wall time.
    pub warm_ms: f64,
    /// Warm-arm committed Equation-1 cost.
    pub warm_cost: f64,
    /// Tasks the warm re-solve moved.
    pub warm_moves: usize,
    /// Whether the warm arm actually hit the cached distribution.
    pub warm: bool,
    /// Whether the warm arm obtained a full-pipeline candidate (a failed
    /// solve silently degrades to FM-vs-previous, which would fake a
    /// speedup — so the bench refuses to count such epochs as healthy).
    pub solved: bool,
    /// Cold-arm wall time (full distribution rebuild + all-tree sweep).
    pub cold_ms: f64,
    /// Cold-arm committed Equation-1 cost.
    pub cold_cost: f64,
    /// Tasks the cold re-solve moved.
    pub cold_moves: usize,
}

impl EpochEntry {
    /// The per-epoch acceptance bar: warm cost within
    /// [`WARM_COST_TOLERANCE`] of cold.
    pub fn warm_not_worse(&self) -> bool {
        self.warm_cost <= self.cold_cost * WARM_COST_TOLERANCE + 1e-9
    }
}

/// One point of the cost-vs-churn Pareto curve: the final post-churn state
/// re-solved under a move budget.
#[derive(Clone, Debug)]
pub struct ParetoPoint {
    /// `ChurnBudget::max_moves` for this resolve.
    pub budget: usize,
    /// Committed Equation-1 cost.
    pub cost: f64,
    /// Moves actually spent (`<= budget`).
    pub moves: usize,
    /// Which candidate won (`"Previous"` / `"Refined"` / `"Solved"`), as a
    /// diagnostic: low budgets ride the bounded FM prefix, and the full
    /// pipeline's solution takes over once its churn fits.
    pub choice: String,
    /// The full-pipeline candidate's cost at this point, when one was
    /// obtained (it is rejected while its churn exceeds the budget).
    pub target_cost: Option<f64>,
}

/// Everything [`run_elastic_bench`] measured.
#[derive(Clone, Debug)]
pub struct ElasticBenchReport {
    /// The options the run used.
    pub opts: ElasticBenchOpts,
    /// Tasks in the generated instance.
    pub tasks: usize,
    /// Edges in the generated instance.
    pub edges: usize,
    /// Per-epoch measurements, epoch-ordered.
    pub epochs: Vec<EpochEntry>,
    /// Budget-ordered Pareto sweep of the final state.
    pub pareto: Vec<ParetoPoint>,
    /// What `available_parallelism` reported on the measuring machine.
    pub available_parallelism: usize,
}

impl ElasticBenchReport {
    /// Total warm-arm wall time.
    pub fn warm_ms_total(&self) -> f64 {
        self.epochs.iter().map(|e| e.warm_ms).sum()
    }

    /// Total cold-arm wall time.
    pub fn cold_ms_total(&self) -> f64 {
        self.epochs.iter().map(|e| e.cold_ms).sum()
    }

    /// `Σ cold_ms / Σ warm_ms` — what [`MIN_WARM_SPEEDUP`] gates.
    pub fn warm_speedup(&self) -> f64 {
        let warm = self.warm_ms_total();
        if warm > 0.0 {
            self.cold_ms_total() / warm
        } else {
            f64::INFINITY
        }
    }
}

/// The machine every epoch targets (16 leaves, same box as the scale
/// bench — elasticity is a *demand-side* story, the machine stays fixed).
fn machine() -> Hierarchy {
    presets::multicore(4, 4, 4.0, 1.0)
}

/// Descriptor string for the bench machine, recorded in the document.
const MACHINE_DESC: &str = "4x4:4,1,0";

/// Replays the churn stream and assembles the report.
pub fn run_elastic_bench(opts: &ElasticBenchOpts) -> Result<ElasticBenchReport, String> {
    if opts.epochs == 0 {
        return Err("elastic bench needs at least one epoch".into());
    }
    let h = machine();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let inst = stream_dag(
        &mut rng,
        &StreamOpts {
            queries: opts.queries,
            depth: opts.depth,
            max_width: opts.max_width,
            max_demand: opts.max_demand,
            ..Default::default()
        },
    );
    let total: f64 = inst.demands().iter().sum();
    if total > 0.5 * h.num_leaves() as f64 {
        return Err(format!(
            "instance infeasible with drift headroom: total demand {total:.2} on {} leaves",
            h.num_leaves()
        ));
    }

    let solver = SolverOptions::builder()
        .trees(opts.trees)
        .units(opts.units)
        .seed(opts.seed)
        .build();
    let initial = Solve::new(&inst, &h)
        .options(solver)
        .run()
        .map_err(|e| format!("initial solve failed: {e}"))?
        .assignment;
    let mut session = Session::with_initial(h.clone(), &inst, &initial);

    let warm_opts = ReplaceOptions::builder().solver(solver).build();
    let cold_opts = warm_opts.to_builder().cold(true).build();
    // Prime the cache: the one cold build whose cost the warm path
    // amortises across every later epoch. Untimed by design — the cold
    // arm below re-pays it every epoch, which is exactly the comparison.
    session.resolve(&cold_opts);

    // epochs + 1: the extra batch is the pre-Pareto shake, drawn from the
    // same cumulative drift so demands stay consistent with the session
    let mut churn_rng = StdRng::seed_from_u64(opts.seed ^ 0x9E37_79B9);
    let stream = demand_churn(
        &mut churn_rng,
        &inst,
        &ChurnOpts {
            epochs: opts.epochs + 1,
            batch: opts.batch,
            jitter: opts.jitter,
        },
    );

    let mut epochs = Vec::with_capacity(opts.epochs);
    for (i, batch) in stream.iter().take(opts.epochs).enumerate() {
        session
            .apply(batch)
            .map_err(|e| format!("epoch {i}: churn batch rejected: {e}"))?;
        // the cold arm resolves the identical post-churn state on a clone
        // that is then discarded, so it never pollutes the live cache
        let mut cold_session = session.clone();
        let (warm_report, warm_ms) = timed(|| session.resolve(&warm_opts));
        let (cold_report, cold_ms) = timed(|| cold_session.resolve(&cold_opts));
        epochs.push(EpochEntry {
            epoch: i,
            warm_ms,
            warm_cost: warm_report.cost,
            warm_moves: warm_report.moves,
            warm: warm_report.warm,
            solved: warm_report.target_cost.is_some() && cold_report.target_cost.is_some(),
            cold_ms,
            cold_cost: cold_report.cost,
            cold_moves: cold_report.moves,
        });
    }

    // Pareto sweep. The steady-state epochs above stay near the optimum
    // (demand jitter only binds through capacity, which is slack here), so
    // a meaningful cost-vs-churn curve needs real displacement: rebuild
    // the final churned state as if a failover had restored it naively
    // round-robin, then resolve that session under doubling move budgets —
    // how much churn budget buys back how much placement quality. One
    // budget-0 resolve first: it commits nothing (zero moves keeps the
    // previous placement) but primes the cache, so the sweep measures
    // placement recovery, not distribution builds. Each budget then gets
    // its own clone of the same state, so the curve is apples-to-apples.
    session
        .apply(&stream[opts.epochs])
        .map_err(|e| format!("pareto shake rejected: {e}"))?;
    let snap = session
        .snapshot()
        .ok_or("no live tasks left for the pareto sweep")?;
    let k = h.num_leaves();
    let naive = Assignment::new(
        (0..snap.instance.num_tasks())
            .map(|v| (v % k) as u32)
            .collect(),
        &h,
    );
    let mut displaced = Session::with_initial(h, &snap.instance, &naive);
    displaced.resolve(&warm_opts.to_builder().max_moves(0).build());
    let active = displaced.num_active();
    let mut budgets = vec![0usize];
    let mut b = 1usize;
    while b < active {
        budgets.push(b);
        b *= 2;
    }
    budgets.push(active);
    let mut pareto = Vec::with_capacity(budgets.len());
    for &budget in &budgets {
        let mut s = displaced.clone();
        let report = s.resolve(&warm_opts.to_builder().max_moves(budget).build());
        pareto.push(ParetoPoint {
            budget,
            cost: report.cost,
            moves: report.moves,
            choice: format!("{:?}", report.choice),
            target_cost: report.target_cost,
        });
    }

    Ok(ElasticBenchReport {
        opts: opts.clone(),
        tasks: inst.num_tasks(),
        edges: inst.graph().num_edges(),
        epochs,
        pareto,
        available_parallelism: std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1),
    })
}

impl ElasticBenchReport {
    /// Renders the report as the `BENCH_elastic.json` document.
    pub fn to_json(&self) -> Json {
        let o = &self.opts;
        Json::obj(vec![
            ("schema", Json::Str(SCHEMA.into())),
            (
                "environment",
                Json::obj(vec![(
                    "available_parallelism",
                    Json::Num(self.available_parallelism as f64),
                )]),
            ),
            (
                "workload",
                Json::obj(vec![
                    ("machine", Json::Str(MACHINE_DESC.into())),
                    ("tasks", Json::Num(self.tasks as f64)),
                    ("edges", Json::Num(self.edges as f64)),
                    ("queries", Json::Num(o.queries as f64)),
                    ("depth", Json::Num(o.depth as f64)),
                    ("max_width", Json::Num(o.max_width as f64)),
                    ("max_demand", Json::Num(o.max_demand)),
                    ("epochs", Json::Num(o.epochs as f64)),
                    ("batch", Json::Num(o.batch as f64)),
                    ("jitter", Json::Num(o.jitter)),
                    ("trees", Json::Num(o.trees as f64)),
                    ("units", Json::Num(o.units as f64)),
                    ("seed", Json::Num(o.seed as f64)),
                ]),
            ),
            (
                "epochs",
                Json::Arr(
                    self.epochs
                        .iter()
                        .map(|e| {
                            Json::obj(vec![
                                ("epoch", Json::Num(e.epoch as f64)),
                                ("warm_ms", Json::Num(e.warm_ms)),
                                ("warm_cost", Json::Num(e.warm_cost)),
                                ("warm_moves", Json::Num(e.warm_moves as f64)),
                                ("warm", Json::Bool(e.warm)),
                                ("solved", Json::Bool(e.solved)),
                                ("cold_ms", Json::Num(e.cold_ms)),
                                ("cold_cost", Json::Num(e.cold_cost)),
                                ("cold_moves", Json::Num(e.cold_moves as f64)),
                                ("warm_not_worse", Json::Bool(e.warm_not_worse())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "pareto",
                Json::Arr(
                    self.pareto
                        .iter()
                        .map(|p| {
                            Json::obj(vec![
                                ("budget", Json::Num(p.budget as f64)),
                                ("cost", Json::Num(p.cost)),
                                ("moves", Json::Num(p.moves as f64)),
                                ("choice", Json::Str(p.choice.clone())),
                                (
                                    "target_cost",
                                    p.target_cost.map(Json::Num).unwrap_or(Json::Null),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "summary",
                Json::obj(vec![
                    ("warm_ms_total", Json::Num(self.warm_ms_total())),
                    ("cold_ms_total", Json::Num(self.cold_ms_total())),
                    ("warm_speedup", Json::Num(self.warm_speedup())),
                ]),
            ),
        ])
    }
}

/// Validates an emitted `BENCH_elastic.json`: parses, checks the schema
/// tag, requires the environment header, a non-empty epoch list where
/// every epoch hit the warm path (`warm = true`), obtained a full-pipeline
/// candidate (`solved = true`) and stayed within the cost tolerance
/// (`warm_not_worse = true`); requires `summary.warm_speedup >=`
/// [`MIN_WARM_SPEEDUP`]; and requires a Pareto curve that starts at budget
/// 0, keeps budgets strictly increasing, spends no more moves than each
/// budget allows, and never gets *more* expensive as the budget grows.
pub fn validate(text: &str) -> Result<(), String> {
    let doc = Json::parse(text)?;
    match doc.get("schema").and_then(Json::as_str) {
        Some(SCHEMA) => {}
        other => return Err(format!("bad schema tag {other:?}, want {SCHEMA:?}")),
    }
    doc.path(&["environment", "available_parallelism"])
        .and_then(Json::as_f64)
        .ok_or("missing environment.available_parallelism")?;
    doc.path(&["workload", "seed"])
        .and_then(Json::as_f64)
        .ok_or("missing workload.seed")?;

    let Some(Json::Arr(epochs)) = doc.get("epochs") else {
        return Err("missing epochs array".into());
    };
    if epochs.is_empty() {
        return Err("empty epochs array".into());
    }
    for e in epochs {
        let i = e
            .get("epoch")
            .and_then(Json::as_f64)
            .ok_or("epoch entry missing its index")?;
        for field in ["warm_ms", "warm_cost", "cold_ms", "cold_cost"] {
            let x = e
                .get(field)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("epoch {i}: missing {field}"))?;
            if !(x.is_finite() && x >= 0.0) {
                return Err(format!("epoch {i}: {field} = {x} is not a measurement"));
            }
        }
        for (flag, why) in [
            ("warm", "the re-solve missed the cached distribution"),
            (
                "solved",
                "an arm degraded to FM-only (pipeline solve failed)",
            ),
            (
                "warm_not_worse",
                "warm cost exceeded the cold-arm tolerance",
            ),
        ] {
            match e.get(flag).and_then(Json::as_bool) {
                Some(true) => {}
                Some(false) => return Err(format!("epoch {i}: {why} ({flag} = false)")),
                None => return Err(format!("epoch {i}: missing {flag}")),
            }
        }
    }

    let speedup = doc
        .path(&["summary", "warm_speedup"])
        .and_then(Json::as_f64)
        .ok_or("missing summary.warm_speedup")?;
    if !(speedup.is_finite() && speedup >= MIN_WARM_SPEEDUP) {
        return Err(format!(
            "warm_speedup {speedup:.2} below the {MIN_WARM_SPEEDUP} acceptance bar"
        ));
    }

    let Some(Json::Arr(pareto)) = doc.get("pareto") else {
        return Err("missing pareto array".into());
    };
    if pareto.is_empty() {
        return Err("empty pareto array".into());
    }
    let mut prev: Option<(f64, f64)> = None; // (budget, cost)
    for p in pareto {
        let budget = p
            .get("budget")
            .and_then(Json::as_f64)
            .ok_or("pareto point missing budget")?;
        let cost = p
            .get("cost")
            .and_then(Json::as_f64)
            .ok_or("pareto point missing cost")?;
        let moves = p
            .get("moves")
            .and_then(Json::as_f64)
            .ok_or("pareto point missing moves")?;
        if !(cost.is_finite() && cost >= 0.0) {
            return Err(format!("pareto budget {budget}: cost {cost} is not a cost"));
        }
        if moves > budget {
            return Err(format!(
                "pareto budget {budget}: spent {moves} moves, over budget"
            ));
        }
        match prev {
            None if budget != 0.0 => {
                return Err("pareto curve must start at budget 0".into());
            }
            Some((pb, _)) if budget <= pb => {
                return Err(format!(
                    "pareto budgets must be strictly increasing ({pb} then {budget})"
                ));
            }
            Some((_, pc)) if cost > pc + 1e-6 * pc.max(1.0) => {
                return Err(format!(
                    "pareto curve is not monotone: cost {cost} at budget {budget} \
                     exceeds {pc} at a smaller budget"
                ));
            }
            _ => {}
        }
        prev = Some((budget, cost));
    }
    Ok(())
}

/// The CI elastic-regression gate: validates the committed
/// `BENCH_elastic.json`, then compares a freshly measured run against it —
/// failing when the fresh warm speedup falls more than
/// [`SMOKE_SPEEDUP_TOLERANCE`] below the committed one, or when any
/// epoch's fresh warm cost exceeds its committed counterpart by more than
/// [`SMOKE_COST_TOLERANCE`] (costs are deterministic for a fixed seed).
/// Raw wall times are never compared — only the within-run ratio, which is
/// machine-speed-free.
pub fn smoke_check(committed: &str, fresh: &ElasticBenchReport) -> Result<(), String> {
    validate(committed).map_err(|e| format!("committed baseline invalid: {e}"))?;
    let doc = Json::parse(committed)?;
    let committed_speedup = doc
        .path(&["summary", "warm_speedup"])
        .and_then(Json::as_f64)
        .ok_or("committed baseline missing summary.warm_speedup")?;
    let fresh_speedup = fresh.warm_speedup();
    if fresh_speedup < committed_speedup / SMOKE_SPEEDUP_TOLERANCE {
        return Err(format!(
            "warm-solve regression: fresh speedup {fresh_speedup:.2}x vs committed \
             {committed_speedup:.2}x (tolerance {SMOKE_SPEEDUP_TOLERANCE}x)"
        ));
    }
    let Some(Json::Arr(epochs)) = doc.get("epochs") else {
        return Err("committed baseline missing epochs".into());
    };
    for (e, c) in fresh.epochs.iter().zip(epochs) {
        let committed_cost = c
            .get("warm_cost")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("committed epoch {} missing warm_cost", e.epoch))?;
        if e.warm_cost > committed_cost * SMOKE_COST_TOLERANCE + 1e-9 {
            return Err(format!(
                "cost regression at epoch {}: fresh warm_cost {:.4} > \
                 {SMOKE_COST_TOLERANCE} x committed {committed_cost:.4}",
                e.epoch, e.warm_cost
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A seconds-scale configuration for library tests: a smaller DAG and
    /// fewer epochs, but the same 8-tree spread so the warm-vs-cold gap
    /// (what `validate` gates at 2x) stays structural, not incidental.
    fn test_opts() -> ElasticBenchOpts {
        ElasticBenchOpts {
            epochs: 3,
            queries: 10,
            depth: 4,
            ..ElasticBenchOpts::standard()
        }
    }

    #[test]
    fn replay_emits_valid_json_and_stays_warm() {
        let report = run_elastic_bench(&test_opts()).unwrap();
        assert_eq!(report.epochs.len(), 3);
        for e in &report.epochs {
            assert!(e.warm, "epoch {}: demand churn must stay warm", e.epoch);
            assert!(e.solved, "epoch {}: both arms must fully solve", e.epoch);
            assert!(
                e.warm_not_worse(),
                "epoch {}: warm {} vs cold {}",
                e.epoch,
                e.warm_cost,
                e.cold_cost
            );
        }
        assert_eq!(report.pareto.first().map(|p| p.budget), Some(0));
        assert_eq!(report.pareto.first().map(|p| p.moves), Some(0));
        let text = report.to_json().to_pretty();
        validate(&text).unwrap();
    }

    #[test]
    fn validation_rejects_broken_documents() {
        assert!(validate("{}").is_err());
        assert!(validate("not json").is_err());
        let report = run_elastic_bench(&test_opts()).unwrap();
        let good = report.to_json().to_pretty();
        let cold = good.replacen("\"warm\": true", "\"warm\": false", 1);
        assert!(validate(&cold).is_err(), "a cache miss must fail");
        let degraded = good.replacen("\"solved\": true", "\"solved\": false", 1);
        assert!(validate(&degraded).is_err(), "a failed solve must fail");
        let worse = good.replacen("\"warm_not_worse\": true", "\"warm_not_worse\": false", 1);
        assert!(validate(&worse).is_err(), "a cost blow-up must fail");
        let wrong_schema = good.replace(SCHEMA, "hgp-bench-elastic/0");
        assert!(validate(&wrong_schema).is_err(), "old schema must fail");

        // a non-monotone Pareto curve must fail
        let mut bent = report.clone();
        let last = bent.pareto.len() - 1;
        bent.pareto[last].cost = bent.pareto[0].cost * 2.0 + 1.0;
        assert!(validate(&bent.to_json().to_pretty()).is_err());

        // a too-slow warm path must fail
        let mut slow = report;
        for e in &mut slow.epochs {
            e.warm_ms = e.cold_ms; // speedup 1.0 < MIN_WARM_SPEEDUP
        }
        assert!(validate(&slow.to_json().to_pretty()).is_err());
    }

    #[test]
    fn smoke_check_flags_regressions_only() {
        let report = run_elastic_bench(&test_opts()).unwrap();
        let committed = report.to_json().to_pretty();
        // same run against itself: no regression
        smoke_check(&committed, &report).unwrap();
        // absolute wall-clock noise is ignored (ratio is preserved)
        let mut noisy = report.clone();
        for e in &mut noisy.epochs {
            e.warm_ms *= 3.0;
            e.cold_ms *= 3.0;
        }
        smoke_check(&committed, &noisy).unwrap();
        // a >25 % speedup drop fails
        let mut slow = report.clone();
        for e in &mut slow.epochs {
            e.warm_ms *= 2.0;
        }
        let err = smoke_check(&committed, &slow).unwrap_err();
        assert!(err.contains("warm-solve regression"), "{err}");
        // a deterministic cost drift fails
        let mut drifted = report.clone();
        drifted.epochs[0].warm_cost *= 1.1;
        let err = smoke_check(&committed, &drifted).unwrap_err();
        assert!(err.contains("cost regression"), "{err}");
        // an invalid baseline fails regardless
        assert!(smoke_check("{}", &report).is_err());
    }
}
