//! The large-instance trajectory: `BENCH_scale.json`.
//!
//! Sweeps the `hgp-workloads` scale presets (2-D mesh, Barabási–Albert,
//! sparse planted clusters) across `n ∈ {1e3, 1e4, 2e4, 1e5, 1e6}` and, at
//! every point, solves each instance twice:
//!
//! * **multilevel** — the `hgp-multilevel` V-cycle (coarsen to the exact
//!   core, uncoarsen with hierarchy-aware FM), and
//! * **baseline** — flat METIS-style k-way partitioning followed by the
//!   `hgp-baselines` Equation-1 refiner (swaps off: pairwise swaps are
//!   quadratic per pass and do not scale past ~1e4 nodes).
//!
//! The emitted document records, per sweep point and family, wall times,
//! final Equation-1 costs, the cost ratio, and the V-cycle's shape (level
//! count, reduction factor). [`validate`] requires the multilevel cost to
//! be at or below the baseline cost on every entry — the acceptance bar
//! for the multilevel front-end. The `n = 2e4` point doubles as the CI
//! smoke anchor: [`smoke_check`] re-measures it and fails on cost
//! regression against the committed document (costs are deterministic for
//! a fixed seed, so any drift is a code change, not noise).

use crate::json::Json;
use crate::timed;
use hgp_baselines::kway::{kway_partition, KwayOpts};
use hgp_baselines::refine::{refine, RefineOpts};
use hgp_core::{Assignment, MultilevelOptions, SolverOptions};
use hgp_hierarchy::{presets, Hierarchy};
use hgp_multilevel::solve_multilevel;
use hgp_workloads::suite::scale_suite_sized;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Schema tag emitted into (and required from) `BENCH_scale.json`.
pub const SCHEMA: &str = "hgp-bench-scale/1";

/// The sweep points of the committed full document. `20_000` is the CI
/// smoke anchor ([`ScaleBenchOpts::smoke`] re-measures exactly that point).
pub const FULL_SWEEP: [usize; 5] = [1_000, 10_000, 20_000, 100_000, 1_000_000];

/// The smoke anchor size (bounded enough for a CI step).
pub const SMOKE_N: usize = 20_000;

/// Workload and solver knobs for [`run_scale_bench`].
#[derive(Clone, Debug)]
pub struct ScaleBenchOpts {
    /// Instance sizes to sweep.
    pub sizes: Vec<usize>,
    /// Decomposition trees for the coarse core solve.
    pub trees: usize,
    /// Rounding grid units per leaf.
    pub units: u32,
    /// Workload + solver seed.
    pub seed: u64,
}

impl ScaleBenchOpts {
    /// The full committed sweep ([`FULL_SWEEP`]).
    pub fn standard() -> Self {
        Self {
            sizes: FULL_SWEEP.to_vec(),
            trees: 4,
            units: 4,
            seed: 0x5CA1_2014,
        }
    }

    /// The bounded CI variant: just the [`SMOKE_N`] anchor point.
    pub fn smoke() -> Self {
        Self {
            sizes: vec![SMOKE_N],
            ..Self::standard()
        }
    }
}

/// One family at one sweep point: both arms on the same instance.
#[derive(Clone, Debug)]
pub struct ScaleEntry {
    /// Workload label, e.g. `"powerlaw-100k"`.
    pub name: String,
    /// Nodes in the instance graph.
    pub nodes: usize,
    /// Edges in the instance graph.
    pub edges: usize,
    /// Multilevel arm wall time.
    pub ml_ms: f64,
    /// Multilevel final Equation-1 cost.
    pub ml_cost: f64,
    /// Coarsening-ladder depth the V-cycle used.
    pub ml_levels: usize,
    /// Nodes remaining at the coarsest level.
    pub ml_coarsest: usize,
    /// `n / coarsest` reduction factor.
    pub ml_reduction: f64,
    /// Baseline arm (k-way + refine) wall time.
    pub baseline_ms: f64,
    /// Baseline final Equation-1 cost.
    pub baseline_cost: f64,
}

impl ScaleEntry {
    /// `ml_cost / baseline_cost` — below 1.0 means multilevel wins.
    pub fn cost_ratio(&self) -> f64 {
        if self.baseline_cost > 0.0 {
            self.ml_cost / self.baseline_cost
        } else if self.ml_cost == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    }

    /// The acceptance bar: multilevel must not lose to the flat baseline.
    pub fn ml_not_worse(&self) -> bool {
        self.ml_cost <= self.baseline_cost * (1.0 + 1e-9)
    }
}

/// One sweep point: every family at a common `n`.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Requested instance size.
    pub n: usize,
    /// Per-family measurements.
    pub entries: Vec<ScaleEntry>,
}

/// Everything [`run_scale_bench`] measured.
#[derive(Clone, Debug)]
pub struct ScaleBenchReport {
    /// The options the run used.
    pub opts: ScaleBenchOpts,
    /// Size-ordered sweep results.
    pub sweep: Vec<SweepPoint>,
    /// What `available_parallelism` reported on the measuring machine.
    pub available_parallelism: usize,
}

/// The machine every sweep point targets (16 leaves — large instances are
/// the *task* side of the scale story; the machine stays realistic).
fn machine() -> Hierarchy {
    presets::multicore(4, 4, 4.0, 1.0)
}

/// Descriptor string for the sweep machine, recorded in the document.
const MACHINE_DESC: &str = "4x4:4,1,0";

fn run_point(n: usize, opts: &ScaleBenchOpts) -> Result<SweepPoint, String> {
    let h = machine();
    let solver_opts = SolverOptions::builder()
        .trees(opts.trees)
        .units(opts.units)
        .seed(opts.seed)
        .multilevel(MultilevelOptions {
            enabled: true,
            ..Default::default()
        })
        .build();
    // swaps are O(n^2) per pass — feasible at suite scale, not at 1e5+
    let refine_opts = RefineOpts {
        swaps: false,
        ..Default::default()
    };
    let mut entries = Vec::new();
    for w in scale_suite_sized(opts.seed, h.num_leaves(), n) {
        let inst = &w.inst;
        let (ml, ml_ms) = timed(|| solve_multilevel(inst, &h, &solver_opts));
        let ml = ml.map_err(|e| format!("{}: multilevel solve failed: {e}", w.name))?;

        let (baseline, baseline_ms) = timed(|| {
            let mut rng = StdRng::seed_from_u64(opts.seed);
            let part = kway_partition(
                inst.graph(),
                inst.demands(),
                h.num_leaves(),
                &KwayOpts::default(),
                &mut rng,
            );
            let mut a = Assignment::new(part, &h);
            refine(&mut a, inst, &h, &refine_opts);
            a
        });
        let baseline_cost = baseline.cost(inst, &h);

        entries.push(ScaleEntry {
            name: w.name,
            nodes: inst.num_tasks(),
            edges: inst.graph().num_edges(),
            ml_ms,
            ml_cost: ml.cost,
            ml_levels: ml.levels,
            ml_coarsest: ml.coarsest_nodes,
            ml_reduction: ml.reduction,
            baseline_ms,
            baseline_cost,
        });
    }
    Ok(SweepPoint { n, entries })
}

/// Runs the sweep and assembles the report.
pub fn run_scale_bench(opts: &ScaleBenchOpts) -> Result<ScaleBenchReport, String> {
    if opts.sizes.is_empty() {
        return Err("scale bench needs at least one sweep size".into());
    }
    let mut sweep = Vec::with_capacity(opts.sizes.len());
    for &n in &opts.sizes {
        sweep.push(run_point(n, opts)?);
    }
    Ok(ScaleBenchReport {
        opts: opts.clone(),
        sweep,
        available_parallelism: std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1),
    })
}

impl ScaleBenchReport {
    /// Renders the report as the `BENCH_scale.json` document.
    pub fn to_json(&self) -> Json {
        let o = &self.opts;
        Json::obj(vec![
            ("schema", Json::Str(SCHEMA.into())),
            (
                "environment",
                Json::obj(vec![(
                    "available_parallelism",
                    Json::Num(self.available_parallelism as f64),
                )]),
            ),
            (
                "workload",
                Json::obj(vec![
                    ("machine", Json::Str(MACHINE_DESC.into())),
                    ("trees", Json::Num(o.trees as f64)),
                    ("units", Json::Num(o.units as f64)),
                    ("seed", Json::Num(o.seed as f64)),
                ]),
            ),
            (
                "sweep",
                Json::Arr(
                    self.sweep
                        .iter()
                        .map(|p| {
                            Json::obj(vec![
                                ("n", Json::Num(p.n as f64)),
                                (
                                    "entries",
                                    Json::Arr(
                                        p.entries
                                            .iter()
                                            .map(|e| {
                                                Json::obj(vec![
                                                    ("name", Json::Str(e.name.clone())),
                                                    ("nodes", Json::Num(e.nodes as f64)),
                                                    ("edges", Json::Num(e.edges as f64)),
                                                    ("ml_ms", Json::Num(e.ml_ms)),
                                                    ("ml_cost", Json::Num(e.ml_cost)),
                                                    ("ml_levels", Json::Num(e.ml_levels as f64)),
                                                    (
                                                        "ml_coarsest",
                                                        Json::Num(e.ml_coarsest as f64),
                                                    ),
                                                    ("ml_reduction", Json::Num(e.ml_reduction)),
                                                    ("baseline_ms", Json::Num(e.baseline_ms)),
                                                    ("baseline_cost", Json::Num(e.baseline_cost)),
                                                    ("cost_ratio", Json::Num(e.cost_ratio())),
                                                    ("ml_not_worse", Json::Bool(e.ml_not_worse())),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Validates an emitted `BENCH_scale.json`: parses, checks the schema tag,
/// requires the environment header, a non-empty sweep with non-empty
/// entries, finite non-negative times and costs everywhere, and
/// `ml_not_worse = true` on every entry (the acceptance bar: the V-cycle
/// never loses to the flat k-way + refine baseline).
pub fn validate(text: &str) -> Result<(), String> {
    let doc = Json::parse(text)?;
    match doc.get("schema").and_then(Json::as_str) {
        Some(SCHEMA) => {}
        other => return Err(format!("bad schema tag {other:?}, want {SCHEMA:?}")),
    }
    doc.path(&["environment", "available_parallelism"])
        .and_then(Json::as_f64)
        .ok_or("missing environment.available_parallelism")?;
    doc.path(&["workload", "seed"])
        .and_then(Json::as_f64)
        .ok_or("missing workload.seed")?;
    let Some(Json::Arr(points)) = doc.get("sweep") else {
        return Err("missing sweep array".into());
    };
    if points.is_empty() {
        return Err("empty sweep".into());
    }
    for p in points {
        let n = p
            .get("n")
            .and_then(Json::as_f64)
            .ok_or("sweep point missing n")?;
        let Some(Json::Arr(entries)) = p.get("entries") else {
            return Err(format!("sweep point n={n} missing entries"));
        };
        if entries.is_empty() {
            return Err(format!("sweep point n={n} has no entries"));
        }
        for e in entries {
            let name = e
                .get("name")
                .and_then(Json::as_str)
                .ok_or("entry missing name")?;
            for field in ["ml_ms", "ml_cost", "baseline_ms", "baseline_cost"] {
                let x = e
                    .get(field)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("{name}: missing {field}"))?;
                if !(x.is_finite() && x >= 0.0) {
                    return Err(format!("{name}: {field} = {x} is not a measurement"));
                }
            }
            match e.get("ml_not_worse").and_then(Json::as_bool) {
                Some(true) => {}
                Some(false) => {
                    return Err(format!(
                        "{name}: multilevel cost exceeds the flat baseline (ml_not_worse = false)"
                    ))
                }
                None => return Err(format!("{name}: missing ml_not_worse")),
            }
        }
    }
    Ok(())
}

/// Maximum tolerated relative cost increase against the committed anchor
/// before [`smoke_check`] fails. Costs are deterministic for a fixed seed,
/// so this only absorbs representation-level noise; a real algorithmic
/// regression moves cost far more than 2 %.
pub const SMOKE_COST_TOLERANCE: f64 = 1.02;

/// The CI scale-regression gate: validates the committed `BENCH_scale.json`
/// and compares a freshly measured smoke run (the [`SMOKE_N`] point)
/// against the committed entries at the same `n`, failing when any
/// family's fresh multilevel cost exceeds the committed cost by more than
/// [`SMOKE_COST_TOLERANCE`]. Wall times are deliberately not compared —
/// CI machines vary; cost is the deterministic trajectory.
pub fn smoke_check(committed: &str, fresh: &ScaleBenchReport) -> Result<(), String> {
    validate(committed).map_err(|e| format!("committed baseline invalid: {e}"))?;
    let doc = Json::parse(committed)?;
    let Some(Json::Arr(points)) = doc.get("sweep") else {
        return Err("committed baseline missing sweep".into());
    };
    let fresh_point = fresh
        .sweep
        .iter()
        .find(|p| p.n == SMOKE_N)
        .ok_or_else(|| format!("fresh run has no n={SMOKE_N} point"))?;
    let committed_point = points
        .iter()
        .find(|p| p.get("n").and_then(Json::as_f64) == Some(SMOKE_N as f64))
        .ok_or_else(|| format!("committed baseline has no n={SMOKE_N} anchor point"))?;
    let Some(Json::Arr(entries)) = committed_point.get("entries") else {
        return Err("committed anchor point missing entries".into());
    };
    for e in &fresh_point.entries {
        let committed_cost = entries
            .iter()
            .find(|c| c.get("name").and_then(Json::as_str) == Some(e.name.as_str()))
            .and_then(|c| c.get("ml_cost"))
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("committed anchor missing entry {}", e.name))?;
        if committed_cost <= 0.0 {
            if e.ml_cost > 0.0 {
                return Err(format!(
                    "cost regression on {}: {} vs committed {committed_cost}",
                    e.name, e.ml_cost
                ));
            }
            continue;
        }
        if e.ml_cost > committed_cost * SMOKE_COST_TOLERANCE {
            return Err(format!(
                "cost regression on {}: fresh ml_cost {:.4} > {SMOKE_COST_TOLERANCE} x committed {committed_cost:.4}",
                e.name, e.ml_cost
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A seconds-scale configuration for library tests (the real sweep
    /// starts at 1e3; the generators assert `n >= 1000`).
    fn test_opts() -> ScaleBenchOpts {
        ScaleBenchOpts {
            sizes: vec![1_000],
            ..ScaleBenchOpts::standard()
        }
    }

    #[test]
    fn small_sweep_emits_valid_json_and_ml_wins() {
        let report = run_scale_bench(&test_opts()).unwrap();
        assert_eq!(report.sweep.len(), 1);
        assert_eq!(report.sweep[0].entries.len(), 3, "three families");
        for e in &report.sweep[0].entries {
            assert!(e.ml_levels >= 1, "{}: must actually coarsen", e.name);
            assert!(
                e.ml_not_worse(),
                "{}: multilevel {} vs baseline {}",
                e.name,
                e.ml_cost,
                e.baseline_cost
            );
        }
        let text = report.to_json().to_pretty();
        validate(&text).unwrap();
        let doc = Json::parse(&text).unwrap();
        assert!(doc
            .path(&["environment", "available_parallelism"])
            .is_some());
    }

    #[test]
    fn validation_rejects_broken_documents() {
        assert!(validate("{}").is_err());
        assert!(validate("not json").is_err());
        let report = run_scale_bench(&test_opts()).unwrap();
        let good = report.to_json().to_pretty();
        let lost = good.replace("\"ml_not_worse\": true", "\"ml_not_worse\": false");
        assert!(validate(&lost).is_err(), "ml_not_worse=false must fail");
        let wrong_schema = good.replace(SCHEMA, "hgp-bench-scale/0");
        assert!(validate(&wrong_schema).is_err(), "old schema must fail");
    }

    #[test]
    fn smoke_check_flags_cost_regressions_only() {
        // fabricate a committed document whose anchor is this run at the
        // test size by relabelling the sweep point as the smoke anchor
        let mut report = run_scale_bench(&test_opts()).unwrap();
        report.sweep[0].n = SMOKE_N;
        let committed = report.to_json().to_pretty();
        // same run against itself: no regression
        smoke_check(&committed, &report).unwrap();
        // wall-clock noise is ignored
        report.sweep[0].entries[0].ml_ms *= 100.0;
        smoke_check(&committed, &report).unwrap();
        // a >2 % cost increase fails
        report.sweep[0].entries[0].ml_cost *= 1.1;
        let err = smoke_check(&committed, &report).unwrap_err();
        assert!(err.contains("cost regression"), "{err}");
        // an invalid baseline fails regardless of cost
        assert!(smoke_check("{}", &report).is_err());
    }
}
