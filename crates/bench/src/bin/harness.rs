//! The experiment harness: regenerates every table/figure of
//! EXPERIMENTS.md.
//!
//! ```text
//! cargo run -p hgp-bench --bin harness --release -- all
//! cargo run -p hgp-bench --bin harness --release -- t3 f1
//! ```

use hgp_bench::{run_experiment, timed, ALL_EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "-h" || a == "--help") {
        eprintln!("usage: harness <experiment id>... | all");
        eprintln!("ids: {}", ALL_EXPERIMENTS.join(" "));
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        ALL_EXPERIMENTS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for id in ids {
        match timed(|| run_experiment(id)) {
            (Some(report), ms) => {
                println!("{report}");
                println!("({id} completed in {:.1} s)\n", ms / 1e3);
            }
            (None, _) => {
                eprintln!("unknown experiment id: {id}");
                std::process::exit(2);
            }
        }
    }
}
