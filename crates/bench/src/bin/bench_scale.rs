//! `bench_scale` — emits or validates the machine-readable
//! `BENCH_scale.json` large-instance trajectory.
//!
//! ```text
//! bench_scale [--out BENCH_scale.json] [--sizes N,N,...] [--trees T]
//! bench_scale --validate PATH
//! bench_scale --smoke PATH
//! ```
//!
//! Without `--validate`, sweeps the scale presets (mesh / power-law /
//! planted clusters) across the configured sizes, solving each instance
//! with both the multilevel V-cycle and the flat k-way + refine baseline
//! (see `hgp_bench::scale_bench`), writes the JSON report to `--out`, and
//! exits non-zero if the document fails its own validation — including
//! the acceptance bar that multilevel cost never exceeds the baseline.
//! With `--validate`, only checks an existing file. With `--smoke`, runs
//! just the bounded `n = 20 000` anchor point and exits non-zero if any
//! family's multilevel cost regressed more than 2 % against the committed
//! document at PATH — the CI scale-regression gate.

use hgp_bench::scale_bench::{run_scale_bench, smoke_check, validate, ScaleBenchOpts};

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = ScaleBenchOpts::standard();
    let mut out = "BENCH_scale.json".to_string();
    let mut check: Option<String> = None;
    let mut smoke: Option<String> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
                .clone()
        };
        match arg.as_str() {
            "--out" => out = val("--out"),
            "--validate" => check = Some(val("--validate")),
            "--smoke" => {
                smoke = Some(val("--smoke"));
                opts.sizes = ScaleBenchOpts::smoke().sizes;
            }
            "--sizes" => {
                opts.sizes = val("--sizes")
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse()
                            .unwrap_or_else(|_| fail("--sizes needs integers"))
                    })
                    .collect();
            }
            "--trees" => {
                opts.trees = val("--trees")
                    .parse()
                    .unwrap_or_else(|_| fail("--trees needs an integer"));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: bench_scale [--out FILE] [--sizes N,N,...] [--trees T] \
                     | --validate FILE | --smoke FILE"
                );
                return;
            }
            other => fail(&format!("unknown flag {other:?}")),
        }
    }

    if let Some(path) = check {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| fail(&format!("read {path}: {e}")));
        match validate(&text) {
            Ok(()) => println!("{path}: valid {}", hgp_bench::scale_bench::SCHEMA),
            Err(e) => fail(&format!("{path}: {e}")),
        }
        return;
    }

    if let Some(path) = smoke {
        let committed =
            std::fs::read_to_string(&path).unwrap_or_else(|e| fail(&format!("read {path}: {e}")));
        let report = run_scale_bench(&opts).unwrap_or_else(|e| fail(&e));
        // persist the fresh measurement even on regression: CI uploads it
        // as the diagnosable artifact either way
        let text = report.to_json().to_pretty();
        std::fs::write(&out, &text).unwrap_or_else(|e| fail(&format!("write {out}: {e}")));
        match smoke_check(&committed, &report) {
            Ok(()) => {
                let p = &report.sweep[0];
                for e in &p.entries {
                    println!(
                        "{}: smoke ok, ml {:.1} ms cost {:.2} vs baseline {:.1} ms cost {:.2} \
                         (ratio {:.3}, {} levels)",
                        e.name,
                        e.ml_ms,
                        e.ml_cost,
                        e.baseline_ms,
                        e.baseline_cost,
                        e.cost_ratio(),
                        e.ml_levels
                    );
                }
            }
            Err(e) => fail(&format!("{path}: {e}")),
        }
        return;
    }

    let report = run_scale_bench(&opts).unwrap_or_else(|e| fail(&e));
    for p in &report.sweep {
        for e in &p.entries {
            eprintln!(
                "{}: ml {:.1} ms cost {:.2} ({} levels, x{:.0} reduction) | \
                 baseline {:.1} ms cost {:.2} | ratio {:.3}",
                e.name,
                e.ml_ms,
                e.ml_cost,
                e.ml_levels,
                e.ml_reduction,
                e.baseline_ms,
                e.baseline_cost,
                e.cost_ratio()
            );
        }
    }
    let text = report.to_json().to_pretty();
    validate(&text).unwrap_or_else(|e| fail(&format!("emitted report is invalid: {e}")));
    std::fs::write(&out, &text).unwrap_or_else(|e| fail(&format!("write {out}: {e}")));
    eprintln!("wrote {out}");
}
