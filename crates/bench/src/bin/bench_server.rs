//! `bench_server` — emits or validates the machine-readable
//! `BENCH_server.json` server load trajectory.
//!
//! ```text
//! bench_server [--out BENCH_server.json] [--tiny] [--mode event|legacy|both]
//!              [--workers N] [--conns N] [--requests N] [--rps X] [--seed S]
//! bench_server --validate PATH
//! bench_server --smoke PATH [--tiny] ...
//! ```
//!
//! Without `--validate`, starts an in-process `hgp-server` per arm,
//! replays the deterministic open-loop schedule against it from a
//! poll-multiplexed client (see `hgp_bench::server_bench`), writes the
//! JSON report to `--out`, and exits non-zero if the document fails its
//! own validation — which includes the capacity claim: the event front
//! end holding ≥ 4× the legacy arm's concurrent connections at an equal
//! (within 1.25×) service p99, with a strictly positive coalescing
//! ratio. With `--validate`, only checks an existing file. With
//! `--smoke`, re-measures and exits non-zero if the event-arm service
//! p99 regressed more than 25% (plus a 500 µs jitter floor) against the
//! committed baseline at PATH — the CI bench-regression gate.

use hgp_bench::server_bench::{
    run_server_bench, smoke_check, validate, Arms, ServerBenchOpts, SCHEMA,
};

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = ServerBenchOpts::standard();
    let mut out = "BENCH_server.json".to_string();
    let mut check: Option<String> = None;
    let mut smoke: Option<String> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
                .clone()
        };
        match arg.as_str() {
            "--tiny" => {
                let keep = (opts.arms, opts.seed);
                opts = ServerBenchOpts::tiny();
                (opts.arms, opts.seed) = keep;
            }
            "--out" => out = val("--out"),
            "--validate" => check = Some(val("--validate")),
            "--smoke" => smoke = Some(val("--smoke")),
            "--mode" => {
                opts.arms = match val("--mode").as_str() {
                    "event" => Arms::Event,
                    "legacy" => Arms::Legacy,
                    "both" => Arms::Both,
                    other => fail(&format!("--mode wants event|legacy|both, got {other:?}")),
                }
            }
            "--workers" => {
                opts.workers = val("--workers")
                    .parse()
                    .unwrap_or_else(|_| fail("--workers needs an integer"))
            }
            "--conns" => {
                opts.legacy_conns = val("--conns")
                    .parse()
                    .unwrap_or_else(|_| fail("--conns needs an integer"))
            }
            "--requests" => {
                opts.load.requests = val("--requests")
                    .parse()
                    .unwrap_or_else(|_| fail("--requests needs an integer"))
            }
            "--rps" => {
                opts.load.rps = val("--rps")
                    .parse()
                    .unwrap_or_else(|_| fail("--rps needs a number"))
            }
            "--seed" => {
                opts.seed = val("--seed")
                    .parse()
                    .unwrap_or_else(|_| fail("--seed needs an integer"))
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: bench_server [--out FILE] [--tiny] [--mode event|legacy|both] \
                     [--workers N] [--conns N] [--requests N] [--rps X] [--seed S] \
                     | --validate FILE | --smoke FILE [--tiny]"
                );
                return;
            }
            other => fail(&format!("unknown flag {other:?}")),
        }
    }

    if let Some(path) = check {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| fail(&format!("read {path}: {e}")));
        match validate(&text) {
            Ok(()) => println!("{path}: valid {SCHEMA}"),
            Err(e) => fail(&format!("{path}: {e}")),
        }
        return;
    }

    if let Some(path) = smoke {
        let committed =
            std::fs::read_to_string(&path).unwrap_or_else(|e| fail(&format!("read {path}: {e}")));
        // the gate only compares the event arm; measure it twice and
        // judge the better run, so one cold-cache or noisy-neighbour
        // window on a loaded CI host cannot trip a 25% p99 gate
        opts.arms = Arms::Event;
        let p99 = |r: &hgp_bench::server_bench::ServerBenchReport| {
            r.arms
                .iter()
                .find(|a| a.mode == "event")
                .map(|a| a.service.p99_us)
                .unwrap_or(f64::MAX)
        };
        let first = run_server_bench(&opts).unwrap_or_else(|e| fail(&e));
        let second = run_server_bench(&opts).unwrap_or_else(|e| fail(&e));
        let report = if p99(&second) < p99(&first) {
            second
        } else {
            first
        };
        match smoke_check(&committed, &report) {
            Ok(()) => {
                let event = report.arms.iter().find(|a| a.mode == "event").unwrap();
                println!(
                    "{path}: smoke ok, event p99 {:.0} us over {} conns \
                     (coalescing ratio {:.2}, utilization {:.0}%)",
                    event.service.p99_us,
                    event.conns,
                    event.coalescing_ratio,
                    100.0 * event.worker_utilization
                );
            }
            Err(e) => fail(&format!("{path}: {e}")),
        }
        return;
    }

    let report = run_server_bench(&opts).unwrap_or_else(|e| fail(&e));
    let text = report.to_json().to_pretty();
    validate(&text).unwrap_or_else(|e| fail(&format!("emitted report is invalid: {e}")));
    std::fs::write(&out, &text).unwrap_or_else(|e| fail(&format!("write {out}: {e}")));
    for arm in &report.arms {
        eprintln!(
            "{:>6}: {} conns, p50 {:.0} us, p99 {:.0} us, p999 {:.0} us, \
             {:.0} req/s, coalescing {:.2}, utilization {:.0}%, errors {}",
            arm.mode,
            arm.conns,
            arm.service.p50_us,
            arm.service.p99_us,
            arm.service.p999_us,
            arm.throughput_rps,
            arm.coalescing_ratio,
            100.0 * arm.worker_utilization,
            arm.errors
        );
    }
    eprintln!("wrote {out}");
}
