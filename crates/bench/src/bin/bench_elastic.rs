//! `bench_elastic` — emits or validates the machine-readable
//! `BENCH_elastic.json` elastic re-placement trajectory.
//!
//! ```text
//! bench_elastic [--out BENCH_elastic.json] [--epochs N] [--batch N] [--trees T] [--seed S]
//! bench_elastic --validate PATH
//! bench_elastic --smoke PATH
//! ```
//!
//! Without `--validate`, replays a demand-churn stream against a live
//! session — timing every epoch's warm re-solve against a forced-cold
//! re-solve of the identical state — plus a final budget sweep for the
//! cost-vs-churn Pareto curve (see `hgp_bench::elastic_bench`), writes the
//! JSON report to `--out`, and exits non-zero if the document fails its
//! own validation — including the acceptance bars that every epoch stays
//! warm, the aggregate speedup reaches 2x, and the Pareto curve is
//! monotone. With `--validate`, only checks an existing file. With
//! `--smoke`, measures fresh (best of two runs, since the gated speedup is
//! timing-derived) and exits non-zero on a >25 % warm-solve regression or
//! any deterministic cost drift against the committed document at PATH —
//! the CI elastic-regression gate.

use hgp_bench::elastic_bench::{run_elastic_bench, smoke_check, validate, ElasticBenchOpts};

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = ElasticBenchOpts::standard();
    let mut out = "BENCH_elastic.json".to_string();
    let mut check: Option<String> = None;
    let mut smoke: Option<String> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
                .clone()
        };
        match arg.as_str() {
            "--out" => out = val("--out"),
            "--validate" => check = Some(val("--validate")),
            "--smoke" => {
                smoke = Some(val("--smoke"));
                opts = ElasticBenchOpts::smoke();
            }
            "--epochs" => {
                opts.epochs = val("--epochs")
                    .parse()
                    .unwrap_or_else(|_| fail("--epochs needs an integer"));
            }
            "--batch" => {
                opts.batch = val("--batch")
                    .parse()
                    .unwrap_or_else(|_| fail("--batch needs an integer"));
            }
            "--trees" => {
                opts.trees = val("--trees")
                    .parse()
                    .unwrap_or_else(|_| fail("--trees needs an integer"));
            }
            "--seed" => {
                opts.seed = val("--seed")
                    .parse()
                    .unwrap_or_else(|_| fail("--seed needs an integer"));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: bench_elastic [--out FILE] [--epochs N] [--batch N] [--trees T] \
                     [--seed S] | --validate FILE | --smoke FILE"
                );
                return;
            }
            other => fail(&format!("unknown flag {other:?}")),
        }
    }

    if let Some(path) = check {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| fail(&format!("read {path}: {e}")));
        match validate(&text) {
            Ok(()) => println!("{path}: valid {}", hgp_bench::elastic_bench::SCHEMA),
            Err(e) => fail(&format!("{path}: {e}")),
        }
        return;
    }

    if let Some(path) = smoke {
        let committed =
            std::fs::read_to_string(&path).unwrap_or_else(|e| fail(&format!("read {path}: {e}")));
        // the gated speedup is a timing ratio: take the better of two runs
        // so one noisy scheduling burst can't fail the gate
        let first = run_elastic_bench(&opts).unwrap_or_else(|e| fail(&e));
        let second = run_elastic_bench(&opts).unwrap_or_else(|e| fail(&e));
        let report = if second.warm_speedup() > first.warm_speedup() {
            second
        } else {
            first
        };
        // persist the fresh measurement even on regression: CI uploads it
        // as the diagnosable artifact either way
        let text = report.to_json().to_pretty();
        std::fs::write(&out, &text).unwrap_or_else(|e| fail(&format!("write {out}: {e}")));
        match smoke_check(&committed, &report) {
            Ok(()) => println!(
                "smoke ok: warm {:.1} ms vs cold {:.1} ms over {} epochs ({:.2}x speedup)",
                report.warm_ms_total(),
                report.cold_ms_total(),
                report.epochs.len(),
                report.warm_speedup()
            ),
            Err(e) => fail(&format!("{path}: {e}")),
        }
        return;
    }

    let report = run_elastic_bench(&opts).unwrap_or_else(|e| fail(&e));
    for e in &report.epochs {
        eprintln!(
            "epoch {}: warm {:.1} ms cost {:.2} ({} moves) | cold {:.1} ms cost {:.2} ({} moves)",
            e.epoch, e.warm_ms, e.warm_cost, e.warm_moves, e.cold_ms, e.cold_cost, e.cold_moves
        );
    }
    for p in &report.pareto {
        eprintln!(
            "pareto: budget {:>4} -> cost {:.2} ({} moves, {}, target {:?})",
            p.budget, p.cost, p.moves, p.choice, p.target_cost
        );
    }
    eprintln!(
        "warm {:.1} ms vs cold {:.1} ms: {:.2}x speedup",
        report.warm_ms_total(),
        report.cold_ms_total(),
        report.warm_speedup()
    );
    let text = report.to_json().to_pretty();
    validate(&text).unwrap_or_else(|e| fail(&format!("emitted report is invalid: {e}")));
    std::fs::write(&out, &text).unwrap_or_else(|e| fail(&format!("write {out}: {e}")));
    eprintln!("wrote {out}");
}
