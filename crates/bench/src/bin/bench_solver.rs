//! `bench_solver` — emits or validates the machine-readable
//! `BENCH_solver.json` perf trajectory.
//!
//! ```text
//! bench_solver [--out BENCH_solver.json] [--tiny] [--threads N]
//!              [--rows R] [--cols C] [--trees T] [--repeats K]
//! bench_solver --validate PATH
//! bench_solver --smoke PATH [--repeats K] ...
//! ```
//!
//! Without `--validate`, runs the serial and parallel solve arms on the
//! seeded mesh workload (see `hgp_bench::solver_bench`), writes the JSON
//! report to `--out`, and exits non-zero if the document fails its own
//! validation (including cost parity between the arms and between the
//! legacy and arena DP engines). With `--validate`, only checks an
//! existing file. With `--smoke`, re-measures the workload and exits
//! non-zero if `total.serial_ms` or `stages.distribution.serial_ms`
//! regressed more than 25% against the committed baseline at PATH — the
//! CI bench-regression gate.
//!
//! This binary registers the counting global allocator, so the emitted
//! per-stage allocation counts are real; library consumers see zeros.

use hgp_bench::solver_bench::{run_solver_bench, smoke_check, validate, SolverBenchOpts};

#[global_allocator]
static ALLOC: hgp_bench::alloc::CountingAlloc = hgp_bench::alloc::CountingAlloc;

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = SolverBenchOpts::standard();
    let mut out = "BENCH_solver.json".to_string();
    let mut check: Option<String> = None;
    let mut smoke: Option<String> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
                .clone()
        };
        let mut num = |name: &str| -> usize {
            val(name)
                .parse()
                .unwrap_or_else(|_| fail(&format!("{name} needs an integer")))
        };
        match arg.as_str() {
            "--tiny" => {
                let keep = (opts.threads, opts.repeats);
                opts = SolverBenchOpts::tiny();
                (opts.threads, opts.repeats) = keep;
            }
            "--out" => out = val("--out"),
            "--validate" => check = Some(val("--validate")),
            "--smoke" => smoke = Some(val("--smoke")),
            "--threads" => opts.threads = num("--threads"),
            "--rows" => opts.rows = num("--rows"),
            "--cols" => opts.cols = num("--cols"),
            "--trees" => opts.trees = num("--trees"),
            "--repeats" => opts.repeats = num("--repeats"),
            "--help" | "-h" => {
                eprintln!(
                    "usage: bench_solver [--out FILE] [--tiny] [--threads N] \
                     [--rows R] [--cols C] [--trees T] [--repeats K] \
                     | --validate FILE | --smoke FILE"
                );
                return;
            }
            other => fail(&format!("unknown flag {other:?}")),
        }
    }

    if let Some(path) = check {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| fail(&format!("read {path}: {e}")));
        match validate(&text) {
            Ok(()) => println!("{path}: valid {}", hgp_bench::solver_bench::SCHEMA),
            Err(e) => fail(&format!("{path}: {e}")),
        }
        return;
    }

    if let Some(path) = smoke {
        let committed =
            std::fs::read_to_string(&path).unwrap_or_else(|e| fail(&format!("read {path}: {e}")));
        let report = run_solver_bench(&opts).unwrap_or_else(|e| fail(&e));
        match smoke_check(&committed, &report) {
            Ok(()) => println!(
                "{path}: smoke ok, total.serial_ms {:.2} (arena speedup {:.2}x, \
                 trace overhead {:+.1}%)",
                report.total.serial_ms,
                report.engine.arena_speedup(),
                100.0 * report.trace.overhead_frac()
            ),
            Err(e) => fail(&format!("{path}: {e}")),
        }
        return;
    }

    let report = run_solver_bench(&opts).unwrap_or_else(|e| fail(&e));
    let text = report.to_json().to_pretty();
    validate(&text).unwrap_or_else(|e| fail(&format!("emitted report is invalid: {e}")));
    std::fs::write(&out, &text).unwrap_or_else(|e| fail(&format!("write {out}: {e}")));
    eprintln!(
        "wrote {out}: dist {:.1} ms -> {:.1} ms, dp {:.1} ms -> {:.1} ms, \
         arena speedup {:.2}x, trace overhead {:+.1}%, parity ok",
        report.distribution.serial_ms,
        report.distribution.parallel_ms,
        report.dp.serial_ms,
        report.dp.parallel_ms,
        report.engine.arena_speedup(),
        100.0 * report.trace.overhead_frac(),
    );
}
