//! `bench_solver` — emits or validates the machine-readable
//! `BENCH_solver.json` perf trajectory.
//!
//! ```text
//! bench_solver [--out BENCH_solver.json] [--tiny] [--threads N]
//!              [--rows R] [--cols C] [--trees T] [--repeats K]
//! bench_solver --validate PATH
//! ```
//!
//! Without `--validate`, runs the serial and parallel solve arms on the
//! seeded mesh workload (see `hgp_bench::solver_bench`), writes the JSON
//! report to `--out`, and exits non-zero if the document fails its own
//! validation (including cost parity between the arms). With `--validate`,
//! only checks an existing file — this is what CI runs on the artifact.

use hgp_bench::solver_bench::{run_solver_bench, validate, SolverBenchOpts};

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = SolverBenchOpts::standard();
    let mut out = "BENCH_solver.json".to_string();
    let mut check: Option<String> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
                .clone()
        };
        let mut num = |name: &str| -> usize {
            val(name)
                .parse()
                .unwrap_or_else(|_| fail(&format!("{name} needs an integer")))
        };
        match arg.as_str() {
            "--tiny" => {
                let keep = (opts.threads, opts.repeats);
                opts = SolverBenchOpts::tiny();
                (opts.threads, opts.repeats) = keep;
            }
            "--out" => out = val("--out"),
            "--validate" => check = Some(val("--validate")),
            "--threads" => opts.threads = num("--threads"),
            "--rows" => opts.rows = num("--rows"),
            "--cols" => opts.cols = num("--cols"),
            "--trees" => opts.trees = num("--trees"),
            "--repeats" => opts.repeats = num("--repeats"),
            "--help" | "-h" => {
                eprintln!(
                    "usage: bench_solver [--out FILE] [--tiny] [--threads N] \
                     [--rows R] [--cols C] [--trees T] [--repeats K] | --validate FILE"
                );
                return;
            }
            other => fail(&format!("unknown flag {other:?}")),
        }
    }

    if let Some(path) = check {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| fail(&format!("read {path}: {e}")));
        match validate(&text) {
            Ok(()) => println!("{path}: valid {}", hgp_bench::solver_bench::SCHEMA),
            Err(e) => fail(&format!("{path}: {e}")),
        }
        return;
    }

    let report = run_solver_bench(&opts).unwrap_or_else(|e| fail(&e));
    let text = report.to_json().to_pretty();
    validate(&text).unwrap_or_else(|e| fail(&format!("emitted report is invalid: {e}")));
    std::fs::write(&out, &text).unwrap_or_else(|e| fail(&format!("write {out}: {e}")));
    eprintln!(
        "wrote {out}: dist {:.1} ms -> {:.1} ms, dp {:.1} ms -> {:.1} ms, parity ok",
        report.distribution.serial_ms,
        report.distribution.parallel_ms,
        report.dp.serial_ms,
        report.dp.parallel_ms,
    );
}
