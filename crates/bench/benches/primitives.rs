//! Criterion bench: the graph-algorithm substrates (max-flow, global min
//! cut, multilevel bisection, decomposition-tree construction).

use criterion::{criterion_group, criterion_main, Criterion};
use hgp_bench::experiments::common;
use hgp_decomp::{build_decomp_tree, DecompOpts};
use hgp_graph::flow::min_cut_groups;
use hgp_graph::mincut::stoer_wagner;
use hgp_graph::partition::{multilevel_bisection, BisectOpts};
use hgp_graph::{generators, NodeId};

fn bench_primitives(c: &mut Criterion) {
    let mut rng = common::rng(3);
    let g = generators::gnp_connected(&mut rng, 128, 0.06, 0.5, 2.0);
    let w = vec![1.0f64; g.num_nodes()];

    let mut group = c.benchmark_group("primitives_n128");
    group.sample_size(20);
    group.bench_function("dinic_st_cut", |b| {
        b.iter(|| min_cut_groups(&g, &[NodeId(0)], &[NodeId(127)]))
    });
    group.bench_function("stoer_wagner", |b| b.iter(|| stoer_wagner(&g)));
    group.bench_function("multilevel_bisection", |b| {
        b.iter(|| {
            let mut r = common::rng(4);
            multilevel_bisection(&g, &w, &BisectOpts::default(), &mut r)
        })
    });
    group.bench_function("decomp_tree", |b| {
        b.iter(|| {
            let mut r = common::rng(5);
            build_decomp_tree(&g, &w, None, &DecompOpts::default(), &mut r)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_primitives);
criterion_main!(benches);
