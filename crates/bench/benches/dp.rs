//! Criterion bench: the signature DP on tree instances (experiment T4's
//! timing arm).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hgp_bench::experiments::common;
use hgp_core::solver::SolverOptions;
use hgp_core::Solve;
use hgp_hierarchy::presets;

/// Tree-reduction solve at the given rounding resolution, via the façade.
fn tree_solve(inst: &hgp_core::Instance, h: &hgp_hierarchy::Hierarchy, units: u32) {
    Solve::new(inst, h)
        .options(SolverOptions::builder().units(units).build())
        .run_tree()
        .unwrap();
}

fn bench_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("dp_tree");
    group.sample_size(10);
    for &n in &[32usize, 64, 128] {
        let demand = (0.8 * 8.0 / n as f64).min(1.0);
        let inst = common::random_tree_instance(9000 + n as u64, n, demand);
        let h2 = presets::multicore(2, 4, 4.0, 1.0);
        group.bench_with_input(BenchmarkId::new("h2_units8", n), &n, |b, _| {
            b.iter(|| tree_solve(&inst, &h2, 8))
        });
        let h1 = presets::flat(8);
        group.bench_with_input(BenchmarkId::new("h1_units8", n), &n, |b, _| {
            b.iter(|| tree_solve(&inst, &h1, 8))
        });
    }
    // grid-resolution axis at fixed n
    let inst = common::random_tree_instance(9064, 64, 0.1);
    let h2 = presets::multicore(2, 4, 4.0, 1.0);
    for &units in &[4u32, 16, 64] {
        group.bench_with_input(BenchmarkId::new("h2_n64_units", units), &units, |b, &u| {
            b.iter(|| tree_solve(&inst, &h2, u))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dp);
criterion_main!(benches);
