//! Criterion bench: baseline mappers vs the paper's algorithm on the
//! mesh workload (cost quality is T3; this measures time).

use criterion::{criterion_group, criterion_main, Criterion};
use hgp_baselines::refine::{refine, RefineOpts};
use hgp_baselines::Baseline;
use hgp_bench::experiments::common;
use hgp_hierarchy::presets;
use hgp_workloads::standard_suite;

fn bench_baselines(c: &mut Criterion) {
    let suite = standard_suite(common::SEED);
    let mesh = suite.iter().find(|w| w.name == "mesh-8x8").unwrap();
    let h = presets::multicore(2, 4, 4.0, 1.0);

    let mut group = c.benchmark_group("baselines_mesh8x8");
    group.sample_size(20);
    for b in Baseline::ALL {
        group.bench_function(b.label(), |bch| {
            bch.iter(|| {
                let mut rng = common::rng(2);
                b.run(&mesh.inst, &h, &mut rng)
            })
        });
    }
    group.bench_function("greedy_plus_refine", |bch| {
        bch.iter(|| {
            let mut a = hgp_baselines::mapping::greedy_placement(&mesh.inst, &h);
            refine(&mut a, &mesh.inst, &h, &RefineOpts::default());
            a
        })
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
