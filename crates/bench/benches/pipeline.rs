//! Criterion bench: the full HGP pipeline (distribution + per-tree DPs)
//! and its two stages separately.

use criterion::{criterion_group, criterion_main, Criterion};
use hgp_bench::experiments::common;
use hgp_core::Solve;
use hgp_decomp::{racke_distribution, DecompOpts};
use hgp_hierarchy::presets;
use hgp_workloads::standard_suite;

fn bench_pipeline(c: &mut Criterion) {
    let suite = standard_suite(common::SEED);
    let mesh = suite.iter().find(|w| w.name == "mesh-8x8").unwrap();
    let h = presets::multicore(2, 4, 4.0, 1.0);
    let opts = common::default_solver().to_builder().trees(4).build();
    let req = Solve::new(&mesh.inst, &h).options(opts);

    let mut group = c.benchmark_group("pipeline_mesh8x8");
    group.sample_size(10);
    group.bench_function("end_to_end_p4", |b| b.iter(|| req.run().unwrap()));
    group.bench_function("distribution_only_p4", |b| {
        b.iter(|| {
            let mut rng = common::rng(1);
            racke_distribution(
                mesh.inst.graph(),
                mesh.inst.demands(),
                4,
                &DecompOpts::default(),
                &mut rng,
            )
        })
    });
    let mut rng = common::rng(1);
    let dist = racke_distribution(
        mesh.inst.graph(),
        mesh.inst.demands(),
        4,
        &DecompOpts::default(),
        &mut rng,
    );
    group.bench_function("tree_dps_only_p4", |b| {
        b.iter(|| req.run_on(&dist).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
