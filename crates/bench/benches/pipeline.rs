//! Criterion bench: the full HGP pipeline (distribution + per-tree DPs)
//! and its two stages separately.

use criterion::{criterion_group, criterion_main, Criterion};
use hgp_bench::experiments::common;
use hgp_core::solver::{solve, solve_on_distribution, SolverOptions};
use hgp_decomp::{racke_distribution, DecompOpts};
use hgp_hierarchy::presets;
use hgp_workloads::standard_suite;

fn bench_pipeline(c: &mut Criterion) {
    let suite = standard_suite(common::SEED);
    let mesh = suite.iter().find(|w| w.name == "mesh-8x8").unwrap();
    let h = presets::multicore(2, 4, 4.0, 1.0);
    let opts = SolverOptions {
        num_trees: 4,
        ..common::default_solver()
    };

    let mut group = c.benchmark_group("pipeline_mesh8x8");
    group.sample_size(10);
    group.bench_function("end_to_end_p4", |b| {
        b.iter(|| solve(&mesh.inst, &h, &opts).unwrap())
    });
    group.bench_function("distribution_only_p4", |b| {
        b.iter(|| {
            let mut rng = common::rng(1);
            racke_distribution(
                mesh.inst.graph(),
                mesh.inst.demands(),
                4,
                &DecompOpts::default(),
                &mut rng,
            )
        })
    });
    let mut rng = common::rng(1);
    let dist = racke_distribution(
        mesh.inst.graph(),
        mesh.inst.demands(),
        4,
        &DecompOpts::default(),
        &mut rng,
    );
    group.bench_function("tree_dps_only_p4", |b| {
        b.iter(|| solve_on_distribution(&mesh.inst, &h, &dist, &opts).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
