//! Wire protocol: newline-delimited text requests and replies.
//!
//! One request per line, fields are space-separated `key=value` tokens
//! after the command word(s); one reply line per request. Grammar (see
//! DESIGN.md §server for the full treatment):
//!
//! ```text
//! solve graph=<spec> machine=<desc> [demand=<f>] [demands=<f,..>]
//!       [units=<u>] [trees=<p>] [seed=<s>] [deadline-ms=<d>]
//!       [refine=0|1] [assignment=0|1] [trace=0|1] [multilevel=0|1]
//!       [near=0|1]
//! place-incremental new machine=<desc>
//! place-incremental add session=<id> demand=<f> [nbrs=<t>:<w>,..]
//! place-incremental remove session=<id> task=<t>
//! place-incremental resize session=<id> task=<t> demand=<f>
//! place-incremental rebalance session=<id> [max-moves=<n>]
//! place-incremental mutate session=<id> <mutation>...
//! place-incremental resolve session=<id> [budget=<n>] [ratio=<f>] [cold=0|1]
//! place-incremental info session=<id>
//! place-incremental end session=<id>
//! stats
//! stats2
//! shutdown
//! ```
//!
//! `stats` is the deprecated v1 metrics snapshot (legacy field names,
//! byte-compatible with older servers); `stats2` is the versioned
//! registry snapshot (`version=2` plus `req.*`/`solve.*`/`pool.*`/
//! `cache.*` keys — mapping table in `docs/PROTOCOL.md`). `trace=1` on a
//! `solve` appends per-stage `trace.*` profiling tokens to the `ok`
//! reply.
//!
//! A `mutate` line carries one transactional batch: every token after
//! `session=` is one mutation, applied in line order, all-or-nothing
//! (the whole batch is validated before anything commits). Mutation
//! tokens:
//!
//! ```text
//! add=<demand>[:<t>:<w>,..]   add a task (optional weighted neighbours)
//! remove=<t>                  remove a live task
//! demand=<t>:<d>              update a live task's demand
//! drain=<l>                   drain leaf l (evacuate + fence off)
//! grow=<g>                    add g level-1 machine groups
//! mult=<lvl>:<m>              re-scale one level's cost multiplier
//! ```
//!
//! `resolve` re-places the session's live tasks under a churn budget
//! (at most `budget` tasks leave their current leaves; `ratio` trades
//! cost slack for fewer moves; `cold=1` forces a distribution rebuild).
//! The reply carries `moves=`/`churn=`/`warm=` tokens; `warm=1` means
//! the cached tree distribution was reused.
//!
//! Graph specs: `edges:<n>:<u>-<v>:<w>,...` inlines a weighted edge list;
//! `gen:stream:<seed>`, `gen:mesh:<r>x<c>:<seed>`, `gen:powerlaw:<n>:<seed>`
//! and `gen:clustered:<b>x<s>:<seed>` draw from the `hgp-workloads`
//! families. Replies are `ok key=value ...` or `err <code> <message>`.

use hgp_core::Instance;
use hgp_graph::generators;
use hgp_graph::Graph;
use hgp_hierarchy::{parse_hierarchy, Hierarchy, ParseErrorKind};
use hgp_workloads::{stream_dag, StreamOpts};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Machine-readable error classes on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrCode {
    /// Malformed or semantically invalid request.
    BadRequest,
    /// The request graph exceeds the inline size caps
    /// ([`MAX_INLINE_NODES`] nodes / [`MAX_INLINE_EDGES`] edges).
    GraphTooLarge,
    /// The machine descriptor exceeds the supported height or leaf caps.
    MachineTooLarge,
    /// Solver queue is full — retry later (backpressure).
    Overloaded,
    /// Unknown session or task id.
    NotFound,
    /// The solve itself failed (infeasible, disconnected, …).
    SolveFailed,
    /// An internal fault (caught panic) — the request may be fine.
    Internal,
    /// Server is draining after `shutdown`.
    ShuttingDown,
}

impl ErrCode {
    /// Wire token.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrCode::BadRequest => "bad-request",
            ErrCode::GraphTooLarge => "graph-too-large",
            ErrCode::MachineTooLarge => "machine-too-large",
            ErrCode::Overloaded => "overloaded",
            ErrCode::NotFound => "not-found",
            ErrCode::SolveFailed => "solve-failed",
            ErrCode::Internal => "internal",
            ErrCode::ShuttingDown => "shutting-down",
        }
    }
}

/// A structured error reply.
#[derive(Clone, Debug)]
pub struct WireError {
    /// Error class.
    pub code: ErrCode,
    /// Human-readable detail (single line).
    pub msg: String,
}

impl WireError {
    /// Convenience constructor.
    pub fn new(code: ErrCode, msg: impl Into<String>) -> Self {
        Self {
            code,
            msg: msg.into(),
        }
    }

    /// `bad-request` shorthand.
    pub fn bad(msg: impl Into<String>) -> Self {
        Self::new(ErrCode::BadRequest, msg)
    }

    /// Formats the reply line (newline excluded).
    pub fn to_line(&self) -> String {
        format!("err {} {}", self.code.as_str(), self.msg.replace('\n', " "))
    }
}

/// Hard caps on inline request sizes, keeping a single request line from
/// monopolising server memory.
pub const MAX_INLINE_NODES: usize = 65_536;
/// Companion cap on inline edge count.
pub const MAX_INLINE_EDGES: usize = 1_048_576;
/// Largest accepted `deadline-ms`. An unbounded value would overflow the
/// `Instant + Duration` deadline arithmetic (itself a wire-reachable
/// panic); anything above ten minutes is effectively "no deadline".
pub const MAX_DEADLINE_MS: u64 = 600_000;

/// How a request describes its communication graph.
#[derive(Clone, Debug, PartialEq)]
pub enum GraphSpec {
    /// Inline weighted edge list on `n` nodes.
    Edges {
        /// Node count.
        n: usize,
        /// `(u, v, w)` triples.
        edges: Vec<(u32, u32, f64)>,
    },
    /// A named workload family drawn with its own seed.
    Gen(GenFamily),
}

/// Generated workload families (mirrors `hgp-workloads`).
#[derive(Clone, Debug, PartialEq)]
pub enum GenFamily {
    /// Streaming-operator DAG (volume demands built in).
    Stream {
        /// Generator seed.
        seed: u64,
    },
    /// 2-D mesh.
    Mesh {
        /// Rows.
        rows: usize,
        /// Columns.
        cols: usize,
        /// Generator seed.
        seed: u64,
    },
    /// Barabási–Albert power-law service graph.
    Powerlaw {
        /// Node count.
        n: usize,
        /// Generator seed.
        seed: u64,
    },
    /// Planted modules + sparse backbone.
    Clustered {
        /// Number of blocks.
        blocks: usize,
        /// Nodes per block.
        size: usize,
        /// Generator seed.
        seed: u64,
    },
}

impl GraphSpec {
    /// Parses a `graph=` value.
    pub fn parse(spec: &str) -> Result<Self, WireError> {
        let mut parts = spec.splitn(2, ':');
        let kind = parts.next().unwrap_or_default();
        let rest = parts.next().unwrap_or_default();
        match kind {
            "edges" => Self::parse_edges(rest),
            "gen" => Self::parse_gen(rest).map(GraphSpec::Gen),
            other => Err(WireError::bad(format!(
                "unknown graph spec kind {other:?} (want edges:… or gen:…)"
            ))),
        }
    }

    fn parse_edges(rest: &str) -> Result<Self, WireError> {
        let (n_str, list) = rest
            .split_once(':')
            .ok_or_else(|| WireError::bad("edges spec needs edges:<n>:<u>-<v>:<w>,…"))?;
        let n: usize = n_str
            .parse()
            .map_err(|_| WireError::bad(format!("bad node count {n_str:?}")))?;
        if n == 0 {
            return Err(WireError::bad("node count must be at least 1"));
        }
        if n > MAX_INLINE_NODES {
            return Err(WireError::new(
                ErrCode::GraphTooLarge,
                format!("node count {n} exceeds the inline cap of {MAX_INLINE_NODES}"),
            ));
        }
        let mut edges = Vec::new();
        for item in list.split(',').filter(|s| !s.is_empty()) {
            let (uv, w_str) = item
                .rsplit_once(':')
                .ok_or_else(|| WireError::bad(format!("bad edge {item:?} (want u-v:w)")))?;
            let (u_str, v_str) = uv
                .split_once('-')
                .ok_or_else(|| WireError::bad(format!("bad edge {item:?} (want u-v:w)")))?;
            let u: u32 = u_str
                .parse()
                .map_err(|_| WireError::bad(format!("bad endpoint {u_str:?}")))?;
            let v: u32 = v_str
                .parse()
                .map_err(|_| WireError::bad(format!("bad endpoint {v_str:?}")))?;
            let w: f64 = w_str
                .parse()
                .map_err(|_| WireError::bad(format!("bad weight {w_str:?}")))?;
            if u as usize >= n || v as usize >= n || u == v {
                return Err(WireError::bad(format!("edge {item:?} out of range")));
            }
            if !(w.is_finite() && w > 0.0) {
                return Err(WireError::bad(format!("edge weight {w} must be positive")));
            }
            edges.push((u, v, w));
            if edges.len() > MAX_INLINE_EDGES {
                return Err(WireError::new(
                    ErrCode::GraphTooLarge,
                    format!("more than {MAX_INLINE_EDGES} inline edges"),
                ));
            }
        }
        if edges.is_empty() {
            return Err(WireError::bad("edges spec lists no edges"));
        }
        Ok(GraphSpec::Edges { n, edges })
    }

    fn parse_gen(rest: &str) -> Result<GenFamily, WireError> {
        let fields: Vec<&str> = rest.split(':').collect();
        let seed_of = |s: &str| -> Result<u64, WireError> {
            s.parse()
                .map_err(|_| WireError::bad(format!("bad generator seed {s:?}")))
        };
        let dims_of = |s: &str| -> Result<(usize, usize), WireError> {
            let (a, b) = s
                .split_once('x')
                .ok_or_else(|| WireError::bad(format!("bad dimensions {s:?} (want AxB)")))?;
            let a = a
                .parse::<usize>()
                .map_err(|_| WireError::bad(format!("bad dimension {s:?}")))?;
            let b = b
                .parse::<usize>()
                .map_err(|_| WireError::bad(format!("bad dimension {s:?}")))?;
            if a == 0 || b == 0 {
                return Err(WireError::bad(format!("dimensions {s:?} out of range")));
            }
            if a * b > MAX_INLINE_NODES {
                return Err(WireError::new(
                    ErrCode::GraphTooLarge,
                    format!("dimensions {s:?} describe more than {MAX_INLINE_NODES} nodes"),
                ));
            }
            Ok((a, b))
        };
        match fields.as_slice() {
            ["stream", s] => Ok(GenFamily::Stream { seed: seed_of(s)? }),
            ["mesh", dims, s] => {
                let (rows, cols) = dims_of(dims)?;
                Ok(GenFamily::Mesh {
                    rows,
                    cols,
                    seed: seed_of(s)?,
                })
            }
            ["powerlaw", n, s] => {
                let n = n
                    .parse::<usize>()
                    .map_err(|_| WireError::bad(format!("bad node count {n:?}")))?;
                if n < 3 {
                    return Err(WireError::bad(format!("powerlaw size {n} out of range")));
                }
                if n > MAX_INLINE_NODES {
                    return Err(WireError::new(
                        ErrCode::GraphTooLarge,
                        format!("powerlaw size {n} exceeds the inline cap of {MAX_INLINE_NODES}"),
                    ));
                }
                Ok(GenFamily::Powerlaw { n, seed: seed_of(s)? })
            }
            ["clustered", dims, s] => {
                let (blocks, size) = dims_of(dims)?;
                Ok(GenFamily::Clustered {
                    blocks,
                    size,
                    seed: seed_of(s)?,
                })
            }
            _ => Err(WireError::bad(format!(
                "unknown generator spec gen:{rest} (want stream:<seed>, mesh:<r>x<c>:<seed>, powerlaw:<n>:<seed>, clustered:<b>x<s>:<seed>)"
            ))),
        }
    }

    /// Materialises the spec into a graph, plus generator-supplied demands
    /// where the family defines them (the stream DAG's volume demands).
    pub fn build(&self) -> Result<(Graph, Option<Vec<f64>>), WireError> {
        match self {
            GraphSpec::Edges { n, edges } => Ok((Graph::from_edges(*n, edges), None)),
            GraphSpec::Gen(family) => match *family {
                GenFamily::Stream { seed } => {
                    let mut rng = StdRng::seed_from_u64(seed);
                    let inst = stream_dag(
                        &mut rng,
                        &StreamOpts {
                            queries: 6,
                            depth: 4,
                            max_width: 3,
                            join_prob: 0.2,
                            max_demand: 0.35,
                            ..Default::default()
                        },
                    );
                    let demands = inst.demands().to_vec();
                    Ok((inst.graph().clone(), Some(demands)))
                }
                GenFamily::Mesh { rows, cols, seed } => {
                    let mut rng = StdRng::seed_from_u64(seed);
                    Ok((generators::grid2d(&mut rng, rows, cols, 0.5, 2.0), None))
                }
                GenFamily::Powerlaw { n, seed } => {
                    let mut rng = StdRng::seed_from_u64(seed);
                    Ok((generators::barabasi_albert(&mut rng, n, 2, 0.5, 3.0), None))
                }
                GenFamily::Clustered { blocks, size, seed } => {
                    let mut rng = StdRng::seed_from_u64(seed);
                    Ok((
                        generators::planted_clusters(&mut rng, blocks, size, 0.5, 3.0, 0.05, 0.3),
                        None,
                    ))
                }
            },
        }
    }
}

/// A fully-parsed `solve` request.
#[derive(Clone, Debug)]
pub struct SolveSpec {
    /// Communication graph description.
    pub graph: GraphSpec,
    /// Target machine.
    pub machine: Hierarchy,
    /// Uniform demand override.
    pub demand: Option<f64>,
    /// Per-task demand override.
    pub demands: Option<Vec<f64>>,
    /// Rounding grid units.
    pub units: u32,
    /// Decomposition trees in the distribution.
    pub trees: usize,
    /// Pipeline seed.
    pub seed: u64,
    /// Soft deadline after which the reply degrades to the baseline path.
    pub deadline_ms: Option<u64>,
    /// Post-solve hierarchy-aware refinement.
    pub refine: bool,
    /// Include the full assignment vector in the reply.
    pub want_assignment: bool,
    /// Append structured `trace.*` profiling tokens (stage timings, DP
    /// sizes, cache and queue facts) to the `ok` reply.
    pub trace: bool,
    /// Route the solve through the multilevel V-cycle (coarsen → exact
    /// core → refine) instead of the flat distribution sweep.
    pub multilevel: bool,
    /// On an exact distribution-cache miss, accept a *near* hit: warm-start
    /// the MWU sampling from a cached distribution of a topologically
    /// identical graph (same node set and edge endpoints, weights free).
    /// Opt-in because the result then depends on cache state, trading the
    /// exact-key path's bit-reproducibility for faster convergence; the
    /// reply reports `cache=near` when taken.
    pub near: bool,
}

impl SolveSpec {
    /// Builds the `Instance` this spec describes.
    pub fn instance(&self) -> Result<Instance, WireError> {
        let (graph, gen_demands) = self.graph.build()?;
        let n = graph.num_nodes();
        let k = self.machine.num_leaves();
        let demands = if let Some(ds) = &self.demands {
            if ds.len() != n {
                return Err(WireError::bad(format!(
                    "expected {n} demands, got {}",
                    ds.len()
                )));
            }
            ds.clone()
        } else if let Some(d) = self.demand {
            vec![d; n]
        } else if let Some(ds) = gen_demands {
            ds
        } else {
            vec![(0.8 * k as f64 / n as f64).min(1.0); n]
        };
        // typed validation (rejects NaN and out-of-range without panicking)
        Instance::try_new(graph, demands).map_err(|e| WireError::bad(e.to_string()))
    }
}

/// One `place-incremental` operation.
#[derive(Clone, Debug)]
pub enum IncrOp {
    /// Open a session on a machine.
    New {
        /// Target machine.
        machine: Hierarchy,
    },
    /// Add a task with edges to existing tasks.
    Add {
        /// Session id.
        session: u64,
        /// Task demand in `(0, 1]`.
        demand: f64,
        /// `(existing task, edge weight)` pairs.
        nbrs: Vec<(usize, f64)>,
    },
    /// Remove a task.
    Remove {
        /// Session id.
        session: u64,
        /// Task id.
        task: usize,
    },
    /// Change a task's demand.
    Resize {
        /// Session id.
        session: u64,
        /// Task id.
        task: usize,
        /// New demand in `(0, 1]`.
        demand: f64,
    },
    /// Run bounded local-search improvement.
    Rebalance {
        /// Session id.
        session: u64,
        /// Move budget.
        max_moves: usize,
    },
    /// Apply a transactional batch of typed mutations, all-or-nothing.
    Mutate {
        /// Session id.
        session: u64,
        /// Mutations in line order.
        ops: Vec<hgp_core::Mutation>,
    },
    /// Warm-started re-solve under a churn budget.
    Resolve {
        /// Session id.
        session: u64,
        /// Maximum tasks that may leave their current leaves
        /// (`None` = unlimited).
        budget: Option<usize>,
        /// Cost-ratio slack traded for fewer moves (`None` = 1.0).
        ratio: Option<f64>,
        /// Force a cold distribution rebuild.
        cold: bool,
    },
    /// Report session state.
    Info {
        /// Session id.
        session: u64,
    },
    /// Close a session.
    End {
        /// Session id.
        session: u64,
    },
}

/// A parsed request line.
#[derive(Clone, Debug)]
pub enum Request {
    /// Full offline solve through the pool.
    Solve(Box<SolveSpec>),
    /// Session-scoped incremental mutation.
    Incr(IncrOp),
    /// Metrics snapshot, legacy field names (deprecated alias of
    /// [`Request::Stats2`] — kept byte-compatible for old scrapers).
    Stats,
    /// Versioned metrics snapshot rendered from the `hgp-obs` registry.
    Stats2,
    /// Graceful shutdown.
    Shutdown,
}

fn parse_kv(tok: &str) -> Result<(&str, &str), WireError> {
    tok.split_once('=')
        .ok_or_else(|| WireError::bad(format!("expected key=value, got {tok:?}")))
}

fn parse_num<T: std::str::FromStr>(key: &str, val: &str) -> Result<T, WireError> {
    val.parse()
        .map_err(|_| WireError::bad(format!("bad value {val:?} for {key}")))
}

fn parse_flag(key: &str, val: &str) -> Result<bool, WireError> {
    match val {
        "0" | "false" => Ok(false),
        "1" | "true" => Ok(true),
        _ => Err(WireError::bad(format!("bad flag {val:?} for {key}"))),
    }
}

fn parse_machine(desc: &str) -> Result<Hierarchy, WireError> {
    parse_hierarchy(desc).map_err(|e| {
        // descriptors that are merely too big for the solver get their own
        // code so clients can tell "fix your syntax" from "shrink the
        // machine" without string-matching
        let code = match e.kind {
            ParseErrorKind::TooLarge => ErrCode::MachineTooLarge,
            ParseErrorKind::Invalid => ErrCode::BadRequest,
        };
        WireError::new(code, format!("bad machine {desc:?}: {e}"))
    })
}

fn parse_nbrs(val: &str) -> Result<Vec<(usize, f64)>, WireError> {
    let mut out = Vec::new();
    for item in val.split(',').filter(|s| !s.is_empty()) {
        let (t, w) = item
            .split_once(':')
            .ok_or_else(|| WireError::bad(format!("bad neighbour {item:?} (want task:w)")))?;
        let t: usize = parse_num("nbrs", t)?;
        let w: f64 = parse_num("nbrs", w)?;
        // same rule as inline graph edges: strictly positive and finite
        // (a zero-weight edge carries no communication and is just the
        // absence of an edge)
        if !(w.is_finite() && w > 0.0) {
            return Err(WireError::bad(format!(
                "neighbour weight {w} must be positive"
            )));
        }
        out.push((t, w));
    }
    Ok(out)
}

fn check_demand(d: f64) -> Result<f64, WireError> {
    if d > 0.0 && d <= 1.0 {
        Ok(d)
    } else {
        Err(WireError::bad(format!("demand {d} outside (0, 1]")))
    }
}

impl Request {
    /// Parses one request line.
    pub fn parse(line: &str) -> Result<Request, WireError> {
        let mut toks = line.split_whitespace();
        match toks.next() {
            None => Err(WireError::bad("empty request")),
            Some("solve") => Self::parse_solve(toks),
            Some("place-incremental") => Self::parse_incr(toks),
            Some("stats") => Ok(Request::Stats),
            Some("stats2") => Ok(Request::Stats2),
            Some("shutdown") => Ok(Request::Shutdown),
            Some(cmd) => Err(WireError::bad(format!(
                "unknown command {cmd:?} (want solve | place-incremental | stats | stats2 | shutdown)"
            ))),
        }
    }

    fn parse_solve<'a>(toks: impl Iterator<Item = &'a str>) -> Result<Request, WireError> {
        let mut graph = None;
        let mut machine = None;
        let mut demand = None;
        let mut demands = None;
        let mut units = 8u32;
        let mut trees = 8usize;
        let mut seed = 1u64;
        let mut deadline_ms = None;
        let mut refine = false;
        let mut want_assignment = false;
        let mut trace = false;
        let mut multilevel = false;
        let mut near = false;
        for tok in toks {
            let (key, val) = parse_kv(tok)?;
            match key {
                "graph" => graph = Some(GraphSpec::parse(val)?),
                "machine" => machine = Some(parse_machine(val)?),
                "demand" => demand = Some(check_demand(parse_num(key, val)?)?),
                "demands" => {
                    let ds = val
                        .split(',')
                        .filter(|s| !s.is_empty())
                        .map(|s| parse_num::<f64>("demands", s).and_then(check_demand))
                        .collect::<Result<Vec<f64>, _>>()?;
                    demands = Some(ds);
                }
                "units" => units = parse_num::<u32>(key, val)?.max(1),
                "trees" => trees = parse_num::<usize>(key, val)?.clamp(1, 64),
                "seed" => seed = parse_num(key, val)?,
                "deadline-ms" => {
                    deadline_ms = Some(parse_num::<u64>(key, val)?.min(MAX_DEADLINE_MS))
                }
                "refine" => refine = parse_flag(key, val)?,
                "assignment" => want_assignment = parse_flag(key, val)?,
                "trace" => trace = parse_flag(key, val)?,
                "multilevel" => multilevel = parse_flag(key, val)?,
                "near" => near = parse_flag(key, val)?,
                _ => return Err(WireError::bad(format!("unknown solve field {key:?}"))),
            }
        }
        let machine: Hierarchy = machine.ok_or_else(|| WireError::bad("solve needs machine=…"))?;
        // The DP packs per-level demands into 16-bit signature lanes:
        // CP(j)·units must fit in u16 for every level. Capacities decrease
        // with depth, so checking the widest level (1) covers them all —
        // rejected here so an oversized `units=` is a `bad-request`, not a
        // panic inside a pool worker.
        let cap1 = machine.capacity(1) as u64;
        if cap1 * units as u64 > u16::MAX as u64 {
            return Err(WireError::bad(format!(
                "units={units} overflows the 16-bit signature lane on this \
                 machine (level-1 capacity {cap1}); max units is {}",
                u16::MAX as u64 / cap1
            )));
        }
        Ok(Request::Solve(Box::new(SolveSpec {
            graph: graph.ok_or_else(|| WireError::bad("solve needs graph=…"))?,
            machine,
            demand,
            demands,
            units,
            trees,
            seed,
            deadline_ms,
            refine,
            want_assignment,
            trace,
            multilevel,
            near,
        })))
    }

    fn parse_incr<'a>(mut toks: impl Iterator<Item = &'a str>) -> Result<Request, WireError> {
        let op = toks
            .next()
            .ok_or_else(|| WireError::bad("place-incremental needs an operation"))?;
        // `mutate` and `resolve` have their own grammars: `mutate` tokens
        // are order-sensitive (each one is a mutation in a transactional
        // batch) and reuse keys like `demand=` with different shapes
        if op == "mutate" {
            return Self::parse_mutate(toks).map(Request::Incr);
        }
        if op == "resolve" {
            return Self::parse_resolve(toks).map(Request::Incr);
        }
        let mut machine = None;
        let mut session = None;
        let mut task = None;
        let mut demand = None;
        let mut nbrs = Vec::new();
        let mut max_moves = 32usize;
        for tok in toks {
            let (key, val) = parse_kv(tok)?;
            match key {
                "machine" => machine = Some(parse_machine(val)?),
                "session" => session = Some(parse_num::<u64>(key, val)?),
                "task" => task = Some(parse_num::<usize>(key, val)?),
                "demand" => demand = Some(check_demand(parse_num(key, val)?)?),
                "nbrs" => nbrs = parse_nbrs(val)?,
                "max-moves" => max_moves = parse_num::<usize>(key, val)?.clamp(1, 10_000),
                _ => {
                    return Err(WireError::bad(format!(
                        "unknown place-incremental field {key:?}"
                    )))
                }
            }
        }
        let need_session =
            || session.ok_or_else(|| WireError::bad(format!("{op} needs session=…")));
        let need_task = || task.ok_or_else(|| WireError::bad(format!("{op} needs task=…")));
        let need_demand = || demand.ok_or_else(|| WireError::bad(format!("{op} needs demand=…")));
        let op = match op {
            "new" => IncrOp::New {
                machine: machine.ok_or_else(|| WireError::bad("new needs machine=…"))?,
            },
            "add" => IncrOp::Add {
                session: need_session()?,
                demand: need_demand()?,
                nbrs,
            },
            "remove" => IncrOp::Remove {
                session: need_session()?,
                task: need_task()?,
            },
            "resize" => IncrOp::Resize {
                session: need_session()?,
                task: need_task()?,
                demand: need_demand()?,
            },
            "rebalance" => IncrOp::Rebalance {
                session: need_session()?,
                max_moves,
            },
            "info" => IncrOp::Info {
                session: need_session()?,
            },
            "end" => IncrOp::End {
                session: need_session()?,
            },
            other => {
                return Err(WireError::bad(format!(
                    "unknown place-incremental op {other:?}"
                )))
            }
        };
        Ok(Request::Incr(op))
    }

    fn parse_mutate<'a>(toks: impl Iterator<Item = &'a str>) -> Result<IncrOp, WireError> {
        use hgp_core::Mutation;
        let mut session = None;
        let mut ops = Vec::new();
        for tok in toks {
            let (key, val) = parse_kv(tok)?;
            match key {
                "session" => session = Some(parse_num::<u64>(key, val)?),
                "add" => {
                    let (d_str, nbrs_str) = match val.split_once(':') {
                        Some((d, rest)) => (d, rest),
                        None => (val, ""),
                    };
                    let demand = check_demand(parse_num("add", d_str)?)?;
                    let nbrs = parse_nbrs(nbrs_str)?;
                    ops.push(Mutation::AddTask { demand, nbrs });
                }
                "remove" => ops.push(Mutation::RemoveTask {
                    task: parse_num(key, val)?,
                }),
                "demand" => {
                    let (t, d) = val.split_once(':').ok_or_else(|| {
                        WireError::bad(format!("bad demand update {val:?} (want task:demand)"))
                    })?;
                    ops.push(Mutation::UpdateDemand {
                        task: parse_num("demand", t)?,
                        demand: check_demand(parse_num("demand", d)?)?,
                    });
                }
                "drain" => ops.push(Mutation::DrainLeaf {
                    leaf: parse_num(key, val)?,
                }),
                "grow" => ops.push(Mutation::AddLeaves {
                    groups: parse_num(key, val)?,
                }),
                "mult" => {
                    let (l, m) = val.split_once(':').ok_or_else(|| {
                        WireError::bad(format!("bad multiplier {val:?} (want level:mult)"))
                    })?;
                    let multiplier: f64 = parse_num("mult", m)?;
                    if !(multiplier.is_finite() && multiplier >= 0.0) {
                        return Err(WireError::bad(format!(
                            "multiplier {multiplier} must be finite and non-negative"
                        )));
                    }
                    ops.push(Mutation::SetMultiplier {
                        level: parse_num("mult", l)?,
                        multiplier,
                    });
                }
                _ => return Err(WireError::bad(format!("unknown mutation {key:?}"))),
            }
        }
        let session = session.ok_or_else(|| WireError::bad("mutate needs session=…"))?;
        if ops.is_empty() {
            return Err(WireError::bad("mutate needs at least one mutation"));
        }
        Ok(IncrOp::Mutate { session, ops })
    }

    fn parse_resolve<'a>(toks: impl Iterator<Item = &'a str>) -> Result<IncrOp, WireError> {
        let mut session = None;
        let mut budget = None;
        let mut ratio = None;
        let mut cold = false;
        for tok in toks {
            let (key, val) = parse_kv(tok)?;
            match key {
                "session" => session = Some(parse_num::<u64>(key, val)?),
                "budget" => budget = Some(parse_num::<usize>(key, val)?),
                "ratio" => {
                    let r: f64 = parse_num(key, val)?;
                    if !(r.is_finite() && r >= 1.0) {
                        return Err(WireError::bad(format!(
                            "ratio {r} must be finite and at least 1"
                        )));
                    }
                    ratio = Some(r);
                }
                "cold" => cold = parse_flag(key, val)?,
                _ => return Err(WireError::bad(format!("unknown resolve field {key:?}"))),
            }
        }
        Ok(IncrOp::Resolve {
            session: session.ok_or_else(|| WireError::bad("resolve needs session=…"))?,
            budget,
            ratio,
            cold,
        })
    }
}

/// Formats an inline edge-list spec for a graph — the inverse of
/// `GraphSpec::parse` for the `edges:` kind, used by load generators.
pub fn format_edges_spec(g: &Graph) -> String {
    use std::fmt::Write;
    let mut s = format!("edges:{}:", g.num_nodes());
    let mut first = true;
    for (_, u, v, w) in g.edges() {
        if !first {
            s.push(',');
        }
        first = false;
        let _ = write!(s, "{}-{}:{}", u.index(), v.index(), w);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_solve_with_inline_edges() {
        let req = Request::parse(
            "solve graph=edges:3:0-1:1.0,1-2:2.5 machine=2x2:4,1,0 units=16 trees=4 seed=9 deadline-ms=250 refine=1 assignment=1",
        )
        .unwrap();
        let Request::Solve(spec) = req else {
            panic!("not a solve")
        };
        assert_eq!(
            spec.graph,
            GraphSpec::Edges {
                n: 3,
                edges: vec![(0, 1, 1.0), (1, 2, 2.5)]
            }
        );
        assert_eq!(spec.machine.num_leaves(), 4);
        assert_eq!(spec.units, 16);
        assert_eq!(spec.trees, 4);
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.deadline_ms, Some(250));
        assert!(spec.refine && spec.want_assignment);
        let inst = spec.instance().unwrap();
        assert_eq!(inst.num_tasks(), 3);
    }

    #[test]
    fn parses_generator_specs() {
        for spec in [
            "gen:stream:7",
            "gen:mesh:4x4:1",
            "gen:powerlaw:24:3",
            "gen:clustered:3x5:2",
        ] {
            let g = GraphSpec::parse(spec).unwrap();
            let (graph, _) = g.build().unwrap();
            assert!(graph.num_nodes() >= 3, "{spec} built {}", graph.num_nodes());
        }
    }

    #[test]
    fn generator_specs_are_deterministic() {
        let a = GraphSpec::parse("gen:powerlaw:24:3")
            .unwrap()
            .build()
            .unwrap()
            .0;
        let b = GraphSpec::parse("gen:powerlaw:24:3")
            .unwrap()
            .build()
            .unwrap()
            .0;
        let ea: Vec<_> = a
            .edges()
            .map(|(_, u, v, w)| (u.0, v.0, w.to_bits()))
            .collect();
        let eb: Vec<_> = b
            .edges()
            .map(|(_, u, v, w)| (u.0, v.0, w.to_bits()))
            .collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn parses_place_incremental_ops() {
        let ops = [
            "place-incremental new machine=2x4:4,1,0",
            "place-incremental add session=3 demand=0.5 nbrs=0:1.0,2:3.5",
            "place-incremental remove session=3 task=1",
            "place-incremental resize session=3 task=0 demand=0.9",
            "place-incremental rebalance session=3 max-moves=8",
            "place-incremental info session=3",
            "place-incremental end session=3",
        ];
        for line in ops {
            assert!(
                matches!(Request::parse(line), Ok(Request::Incr(_))),
                "{line}"
            );
        }
        let Ok(Request::Incr(IncrOp::Add {
            session,
            demand,
            nbrs,
        })) = Request::parse("place-incremental add session=3 demand=0.5 nbrs=0:1.0,2:3.5")
        else {
            panic!()
        };
        assert_eq!(session, 3);
        assert_eq!(demand, 0.5);
        assert_eq!(nbrs, vec![(0, 1.0), (2, 3.5)]);
    }

    #[test]
    fn rejects_malformed_requests() {
        for line in [
            "",
            "frobnicate",
            "solve machine=2x2:4,1,0",
            "solve graph=edges:3:0-1:1.0",
            "solve graph=edges:0: machine=4",
            "solve graph=edges:3:0-5:1.0 machine=4",
            "solve graph=edges:3:0-1:-2.0 machine=4",
            "solve graph=gen:unknown:3 machine=4",
            "solve graph=edges:3:0-1:1.0 machine=4 demand=1.5",
            "solve graph=edges:3:0-1:1.0 machine=4 demand=NaN",
            "solve graph=edges:3:0-1:1.0 machine=4 demands=0.5,NaN,0.5",
            // oversized units would overflow the 16-bit signature lane
            "solve graph=edges:2:0-1:1.0 machine=2x2:4,1,0 units=70000",
            // neighbour edges follow the same strictly-positive weight rule
            // as inline graph edges
            "place-incremental add session=1 demand=0.5 nbrs=0:0.0",
            "place-incremental add session=1 demand=0.5 nbrs=0:-1.0",
            "place-incremental add session=1 demand=0.5 nbrs=0:inf",
            "place-incremental add demand=0.5",
            "place-incremental wat session=1",
        ] {
            let err = Request::parse(line).err().map(|e| e.code);
            assert_eq!(err, Some(ErrCode::BadRequest), "{line:?} -> {err:?}");
        }
    }

    #[test]
    fn oversized_graphs_get_their_own_err_code() {
        for line in [
            // inline node count over the 65 536 cap
            "solve graph=edges:70000:0-1:1.0 machine=4",
            // generator families route through the same cap
            "solve graph=gen:mesh:1000x1000:1 machine=4",
            "solve graph=gen:powerlaw:70000:1 machine=4",
            "solve graph=gen:clustered:1000x1000:1 machine=4",
        ] {
            let e = Request::parse(line).unwrap_err();
            assert_eq!(e.code, ErrCode::GraphTooLarge, "{line:?} -> {e:?}");
            assert_eq!(
                e.to_line().split_whitespace().nth(1),
                Some("graph-too-large")
            );
        }
        // degenerate-but-small specs remain plain bad requests
        let e = Request::parse("solve graph=edges:0: machine=4").unwrap_err();
        assert_eq!(e.code, ErrCode::BadRequest);
        let e = Request::parse("solve graph=gen:powerlaw:2:1 machine=4").unwrap_err();
        assert_eq!(e.code, ErrCode::BadRequest);
    }

    #[test]
    fn oversized_machines_get_their_own_err_code() {
        for line in [
            // height 5 exceeds the 4-level signature-DP ceiling
            "solve graph=edges:2:0-1:1.0 machine=2x2x2x2x2:16,8,4,2,1,0",
            // 10^6 leaves exceeds the leaf cap
            "solve graph=edges:2:0-1:1.0 machine=1000x1000",
        ] {
            let e = Request::parse(line).unwrap_err();
            assert_eq!(e.code, ErrCode::MachineTooLarge, "{line:?} -> {e:?}");
            assert_eq!(
                e.to_line().split_whitespace().nth(1),
                Some("machine-too-large")
            );
        }
        // a syntactically broken machine is still a bad request
        let e = Request::parse("solve graph=edges:2:0-1:1.0 machine=2xfoo").unwrap_err();
        assert_eq!(e.code, ErrCode::BadRequest);
    }

    #[test]
    fn multilevel_flag_parses_and_defaults_off() {
        let base = "solve graph=edges:2:0-1:1.0 machine=2x2:4,1,0";
        let Ok(Request::Solve(spec)) = Request::parse(base) else {
            panic!()
        };
        assert!(!spec.multilevel, "multilevel must default off");
        let Ok(Request::Solve(spec)) = Request::parse(&format!("{base} multilevel=1")) else {
            panic!()
        };
        assert!(spec.multilevel);
        let Ok(Request::Solve(spec)) = Request::parse(&format!("{base} multilevel=false")) else {
            panic!()
        };
        assert!(!spec.multilevel);
        let err = Request::parse(&format!("{base} multilevel=2")).unwrap_err();
        assert_eq!(err.code, ErrCode::BadRequest);
    }

    #[test]
    fn near_flag_parses_and_defaults_off() {
        let base = "solve graph=edges:2:0-1:1.0 machine=2x2:4,1,0";
        let Ok(Request::Solve(spec)) = Request::parse(base) else {
            panic!()
        };
        assert!(!spec.near, "near must default off (bit-reproducible path)");
        let Ok(Request::Solve(spec)) = Request::parse(&format!("{base} near=1")) else {
            panic!()
        };
        assert!(spec.near);
        let Ok(Request::Solve(spec)) = Request::parse(&format!("{base} near=false")) else {
            panic!()
        };
        assert!(!spec.near);
        let err = Request::parse(&format!("{base} near=2")).unwrap_err();
        assert_eq!(err.code, ErrCode::BadRequest);
    }

    #[test]
    fn units_lane_bound_is_tight() {
        // 2x2 machine: capacity(1) = 2, so 32767 units fit and 32768 don't
        let ok = "solve graph=edges:2:0-1:1.0 machine=2x2:4,1,0 units=32767";
        assert!(Request::parse(ok).is_ok());
        let over = "solve graph=edges:2:0-1:1.0 machine=2x2:4,1,0 units=32768";
        let e = Request::parse(over).unwrap_err();
        assert_eq!(e.code, ErrCode::BadRequest);
        assert!(e.msg.contains("max units is 32767"), "{}", e.msg);
    }

    #[test]
    fn deadline_is_clamped_to_sane_range() {
        // u64::MAX would overflow `Instant + Duration` in the server
        let line = format!(
            "solve graph=edges:2:0-1:1.0 machine=2x2:4,1,0 deadline-ms={}",
            u64::MAX
        );
        let Ok(Request::Solve(spec)) = Request::parse(&line) else {
            panic!("huge deadline must still parse (clamped)");
        };
        assert_eq!(spec.deadline_ms, Some(MAX_DEADLINE_MS));
    }

    #[test]
    fn edges_spec_roundtrips() {
        let g = Graph::from_edges(4, &[(0, 1, 1.5), (1, 2, 2.0), (2, 3, 0.25)]);
        let spec = format_edges_spec(&g);
        let parsed = GraphSpec::parse(&spec).unwrap();
        let (g2, _) = parsed.build().unwrap();
        assert_eq!(g2.num_nodes(), 4);
        assert_eq!(g2.num_edges(), 3);
        let e: Vec<_> = g2.edges().map(|(_, u, v, w)| (u.0, v.0, w)).collect();
        assert_eq!(e, vec![(0, 1, 1.5), (1, 2, 2.0), (2, 3, 0.25)]);
    }

    #[test]
    fn stats_and_shutdown_parse() {
        assert!(matches!(Request::parse("stats"), Ok(Request::Stats)));
        assert!(matches!(Request::parse("stats2"), Ok(Request::Stats2)));
        assert!(matches!(Request::parse("shutdown"), Ok(Request::Shutdown)));
    }

    #[test]
    fn trace_flag_parses_and_defaults_off() {
        let base = "solve graph=edges:2:0-1:1.0 machine=2x2:4,1,0";
        let Ok(Request::Solve(spec)) = Request::parse(base) else {
            panic!()
        };
        assert!(!spec.trace, "trace must default off");
        let Ok(Request::Solve(spec)) = Request::parse(&format!("{base} trace=1")) else {
            panic!()
        };
        assert!(spec.trace);
        let Ok(Request::Solve(spec)) = Request::parse(&format!("{base} trace=0")) else {
            panic!()
        };
        assert!(!spec.trace);
        let err = Request::parse(&format!("{base} trace=2")).unwrap_err();
        assert_eq!(err.code, ErrCode::BadRequest);
    }
}
