//! The TCP front ends: event-driven multiplexing (default) or legacy
//! thread-per-connection, over one shared request router.
//!
//! Deliberately `std`-only (no async runtime is vendored). The default
//! front end is the `event` readiness loop: one thread owns
//! every connection through the [`crate::netpoll`] shim, parses lines,
//! answers `stats`/`stats2`/`place-incremental`/`shutdown` inline, and
//! dispatches `solve` into the bounded [`SolverPool`], flushing replies
//! as workers complete. The legacy mode (`ServerConfig::legacy_threads`,
//! `hgp serve --legacy-threads`) keeps the original thread per
//! connection with 200 ms read timeouts; it remains wire-byte-compatible
//! and is the only mode on non-unix targets. Both front ends route
//! through `route_inline`, so request semantics cannot drift between
//! them.

use crate::cache::DecompCache;
use crate::metrics::Metrics;
use crate::pool::{channel_reply, SolveJob, SolverPool};
use crate::protocol::{ErrCode, Request, SolveSpec, WireError};
use crate::session::SessionTable;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server construction knobs.
///
/// Marked `#[non_exhaustive]`: construct via [`ServerConfig::default`]
/// plus field mutation, or fluently through [`ServerConfig::builder`].
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Solver worker threads.
    pub workers: usize,
    /// Bounded solve-queue depth; a full queue answers `overloaded`.
    pub queue_capacity: usize,
    /// Worker width each individual solve fans its tree sampling and
    /// per-tree DPs across (`hgp serve --threads`). Peak thread demand is
    /// `workers × parallelism`; results never depend on it.
    pub parallelism: hgp_core::Parallelism,
    /// Decomposition-cache capacity (distributions, not bytes).
    pub cache_capacity: usize,
    /// Maximum concurrently open incremental sessions.
    pub max_sessions: usize,
    /// Signature-DP engine options applied to every solve
    /// (`hgp serve --no-prune` disables dominance pruning).
    pub dp: hgp_core::DpOptions,
    /// Use the legacy thread-per-connection front end instead of the
    /// event-driven readiness loop (`hgp serve --legacy-threads`). The
    /// wire protocol is byte-identical either way; legacy mode caps
    /// practical concurrency at OS thread scale and is the automatic
    /// fallback on non-unix targets.
    pub legacy_threads: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_capacity: 64,
            parallelism: hgp_core::Parallelism::Auto,
            cache_capacity: 32,
            max_sessions: 256,
            dp: hgp_core::DpOptions::default(),
            legacy_threads: false,
        }
    }
}

impl ServerConfig {
    /// Fluent builder seeded with [`ServerConfig::default`].
    pub fn builder() -> ServerConfigBuilder {
        ServerConfigBuilder::default()
    }

    /// Builder seeded with this configuration's current values.
    pub fn to_builder(self) -> ServerConfigBuilder {
        ServerConfigBuilder { config: self }
    }
}

/// Fluent builder for [`ServerConfig`].
///
/// ```
/// use hgp_server::ServerConfig;
///
/// let config = ServerConfig::builder()
///     .addr("127.0.0.1:0")
///     .workers(2)
///     .queue_capacity(16)
///     .build();
/// assert_eq!(config.workers, 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct ServerConfigBuilder {
    config: ServerConfig,
}

impl ServerConfigBuilder {
    /// Sets the bind address (`127.0.0.1:0` picks a free port).
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.config.addr = addr.into();
        self
    }

    /// Sets the solver worker-thread count.
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Sets the bounded solve-queue depth.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.config.queue_capacity = capacity;
        self
    }

    /// Sets the per-solve fan-out width.
    pub fn parallelism(mut self, par: hgp_core::Parallelism) -> Self {
        self.config.parallelism = par;
        self
    }

    /// Sets the decomposition-cache capacity (distributions, not bytes).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.config.cache_capacity = capacity;
        self
    }

    /// Sets the maximum number of concurrently open incremental sessions.
    pub fn max_sessions(mut self, max: usize) -> Self {
        self.config.max_sessions = max;
        self
    }

    /// Sets the signature-DP engine options applied to every solve.
    pub fn dp(mut self, dp: hgp_core::DpOptions) -> Self {
        self.config.dp = dp;
        self
    }

    /// Selects the legacy thread-per-connection front end.
    pub fn legacy_threads(mut self, legacy: bool) -> Self {
        self.config.legacy_threads = legacy;
        self
    }

    /// Finalises the configuration.
    pub fn build(self) -> ServerConfig {
        self.config
    }
}

pub(crate) struct Shared {
    pub(crate) addr: SocketAddr,
    pub(crate) pool: parking_lot::Mutex<SolverPool>,
    pub(crate) sessions: SessionTable,
    pub(crate) cache: Arc<DecompCache>,
    pub(crate) metrics: Arc<Metrics>,
    pub(crate) stop: AtomicBool,
    pub(crate) conns: AtomicU64,
}

impl Shared {
    pub(crate) fn stopping(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// Bookkeeping for an accepted connection (drain counter + gauge).
    pub(crate) fn conn_opened(&self) {
        let now = self.conns.fetch_add(1, Ordering::Relaxed) + 1;
        self.metrics.conns_open.set(now);
    }

    /// Bookkeeping for a closed connection.
    pub(crate) fn conn_closed(&self) {
        let now = self.conns.fetch_sub(1, Ordering::Release) - 1;
        self.metrics.conns_open.set(now);
    }

    /// Idempotent shutdown trigger: raises the flag, wakes the front end
    /// with a self-connect, and drains the solver pool.
    pub(crate) fn trigger_shutdown(&self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        let _ = TcpStream::connect(self.addr);
        self.pool.lock().shutdown();
    }
}

/// A running placement service.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts accepting. Returns once the listener is live.
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let cache = Arc::new(DecompCache::new(config.cache_capacity));
        let metrics = Arc::new(Metrics::new());
        let pool = SolverPool::new(
            config.workers,
            config.queue_capacity,
            config.parallelism,
            config.dp,
            Arc::clone(&cache),
            Arc::clone(&metrics),
        );
        let shared = Arc::new(Shared {
            addr,
            pool: parking_lot::Mutex::new(pool),
            sessions: SessionTable::new(config.max_sessions),
            cache,
            metrics,
            stop: AtomicBool::new(false),
            conns: AtomicU64::new(0),
        });
        let accept_shared = Arc::clone(&shared);
        // non-unix targets have no netpoll shim: always fall back to the
        // legacy threaded front end there
        let legacy = config.legacy_threads || !cfg!(unix);
        let accept_thread = if legacy {
            std::thread::Builder::new()
                .name("hgp-accept".to_string())
                .spawn(move || accept_loop(listener, accept_shared))?
        } else {
            #[cfg(unix)]
            {
                std::thread::Builder::new()
                    .name("hgp-event".to_string())
                    .spawn(move || crate::event::event_loop(listener, accept_shared))?
            }
            #[cfg(not(unix))]
            {
                unreachable!("non-unix targets always take the legacy branch")
            }
        };
        Ok(Server {
            addr,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown: stops accepting, drains workers, and lets
    /// connection threads notice on their next read timeout.
    pub fn shutdown(&self) {
        self.shared.trigger_shutdown();
    }

    /// Blocks until the accept loop has exited and live connections have
    /// drained (call [`Server::shutdown`] first, or from another thread).
    ///
    /// The connection drain is bounded: threads notice the stop flag within
    /// one read timeout, so waiting a few seconds is enough to let in-flight
    /// replies — the `ok draining=1` answer to a wire `shutdown` in
    /// particular — reach their clients before the process exits.
    pub fn join(&mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while self.shared.conns.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
        self.join();
    }
}

pub(crate) fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.stopping() {
            break;
        }
        let Ok(stream) = stream else { continue };
        let conn_shared = Arc::clone(&shared);
        shared.conn_opened();
        let _ = std::thread::Builder::new()
            .name("hgp-conn".to_string())
            .spawn(move || {
                // catch_unwind so the connection gauge is decremented even
                // if the handler has a bug — a leaked count would make
                // `join` wait out its full drain deadline forever after
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let _ = handle_connection(stream, &conn_shared);
                }));
                conn_shared.conn_closed();
            });
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) -> std::io::Result<()> {
    // Timeouts keep this thread responsive to shutdown even on idle
    // connections.
    stream.set_read_timeout(Some(Duration::from_millis(200)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if shared.stopping() {
            return Ok(());
        }
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // client closed
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(e) => return Err(e),
        }
        if line.trim().is_empty() {
            continue;
        }
        // the one-reply-per-line invariant holds even if a handler panics:
        // the panic is converted into an `err internal` reply
        let reply = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handle_line(line.trim(), shared)
        }))
        .unwrap_or_else(|_| {
            WireError::new(ErrCode::Internal, "request handler panicked").to_line()
        });
        writer.write_all(reply.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
}

/// What [`route_inline`] decided about one request line.
pub(crate) enum Routed {
    /// The reply is ready — `stats`, `stats2`, `place-incremental`,
    /// `shutdown`, and every error are answered without touching the
    /// solver pool (so metrics stay readable even when the pool is
    /// saturated).
    Inline(String),
    /// A `solve`: the caller owns dispatching it into the pool (blocking
    /// in the legacy front end, completion-queue async in the event loop).
    Solve(Box<SolveSpec>),
}

/// The single request router both front ends share: parses the line,
/// answers everything except `solve` inline, and hands `solve` specs
/// back to the caller for pool dispatch. Keeping this common is what
/// guarantees the two modes stay wire-byte-compatible.
pub(crate) fn route_inline(line: &str, shared: &Shared) -> Routed {
    let metrics = &shared.metrics;
    metrics.requests.inc();
    let request = match Request::parse(line) {
        Ok(r) => r,
        Err(e) => {
            metrics.bad_requests.inc();
            return Routed::Inline(e.to_line());
        }
    };
    Routed::Inline(match request {
        Request::Solve(spec) => {
            if shared.stopping() {
                return Routed::Inline(
                    WireError::new(ErrCode::ShuttingDown, "server is draining").to_line(),
                );
            }
            return Routed::Solve(spec);
        }
        Request::Incr(op) => match shared.sessions.apply(op) {
            Ok(out) => {
                metrics.incr_ops.inc();
                metrics
                    .sessions_open
                    .set(shared.sessions.open_count() as u64);
                metrics.session_mutations.add(out.mutations);
                metrics.session_moves.add(out.moves);
                if out.warm_solve {
                    metrics.session_warm_solves.inc();
                }
                format!("ok {}", out.reply)
            }
            Err(e) => {
                if e.code == ErrCode::BadRequest {
                    metrics.bad_requests.inc();
                }
                e.to_line()
            }
        },
        Request::Stats => {
            metrics
                .sessions_open
                .set(shared.sessions.open_count() as u64);
            format!(
                "ok {}",
                metrics.stats_line(shared.cache.hits(), shared.cache.misses())
            )
        }
        Request::Stats2 => {
            metrics
                .sessions_open
                .set(shared.sessions.open_count() as u64);
            format!(
                "ok {}",
                metrics.stats2_line(
                    shared.cache.hits(),
                    shared.cache.misses(),
                    shared.cache.near_hits(),
                )
            )
        }
        Request::Shutdown => {
            shared.trigger_shutdown();
            "ok draining=1".to_string()
        }
    })
}

/// Legacy-mode line handler: routes, then blocks the connection thread
/// on the solve reply (one in-flight solve per connection by design).
fn handle_line(line: &str, shared: &Shared) -> String {
    let spec = match route_inline(line, shared) {
        Routed::Inline(reply) => return reply,
        Routed::Solve(spec) => spec,
    };
    let (tx, rx) = mpsc::channel();
    let now = Instant::now();
    let deadline = spec.deadline_ms.map(|ms| now + Duration::from_millis(ms));
    let job = SolveJob::new(*spec, now, deadline, channel_reply(tx));
    let submitted = shared.pool.lock().submit(job);
    match submitted {
        Ok(()) => match rx.recv() {
            Ok(reply) => reply,
            // worker dropped the job on the floor mid-drain
            Err(_) => WireError::new(ErrCode::ShuttingDown, "server is draining").to_line(),
        },
        Err(e) => {
            if e.code == ErrCode::Overloaded {
                shared.metrics.overloaded.inc();
            }
            e.to_line()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    fn roundtrip(stream: &mut TcpStream, line: &str) -> String {
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        reply.trim().to_string()
    }

    #[test]
    fn serves_a_basic_conversation() {
        let server = Server::start(ServerConfig::builder().workers(2).build()).unwrap();
        let mut c = TcpStream::connect(server.addr()).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(60))).unwrap();

        let r = roundtrip(&mut c, "solve graph=edges:4:0-1:3.0,1-2:1.0,2-3:3.0 machine=2x2:4,1,0 demand=0.4 trees=2 seed=1");
        assert!(r.starts_with("ok cost="), "{r}");
        assert!(!r.contains("trace."), "untraced reply must stay clean: {r}");

        let r = roundtrip(&mut c, "place-incremental new machine=2x2:4,1,0");
        assert!(r.starts_with("ok session="), "{r}");

        let r = roundtrip(&mut c, "bogus");
        assert!(r.starts_with("err bad-request"), "{r}");

        let r = roundtrip(&mut c, "stats");
        assert!(r.contains("requests=4"), "{r}");

        let r = roundtrip(&mut c, "stats2");
        assert!(r.starts_with("ok version=2 req.lines=5"), "{r}");
        for tok in ["solve.ok=1", "cache.misses=1", "solve.latency-us-count=1"] {
            assert!(r.contains(tok), "missing {tok}: {r}");
        }

        server.shutdown();
    }

    #[test]
    fn traced_solve_appends_trace_tokens() {
        let server = Server::start(ServerConfig::builder().workers(1).build()).unwrap();
        let mut c = TcpStream::connect(server.addr()).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(60))).unwrap();

        let line =
            "solve graph=gen:clustered:2x4:5 machine=2x2:4,1,0 demand=0.4 trees=4 seed=7 trace=1";
        let r = roundtrip(&mut c, line);
        assert!(r.starts_with("ok cost="), "{r}");
        for tok in [
            "trace.queue-wait-us=",
            "trace.distribution-us=",
            "trace.sweep-us=",
            "trace.dp-cpu-us=",
            "trace.repair-cpu-us=",
            "trace.cache-hit=0",
            "trace.trees-total=4",
            "trace.trees-solved=4",
            "trace.dp-entries=",
            "trace.dp-pruned=",
        ] {
            assert!(r.contains(tok), "missing {tok}: {r}");
        }
        // repeat request: the distribution now comes from the cache
        let r2 = roundtrip(&mut c, line);
        assert!(r2.contains("trace.cache-hit=1"), "{r2}");
        // tracing must not change the answer
        let cost = |s: &str| {
            s.split_whitespace()
                .find_map(|kv| kv.strip_prefix("cost="))
                .unwrap()
                .to_string()
        };
        assert_eq!(cost(&r), cost(&r2));

        server.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_joins() {
        let mut server = Server::start(ServerConfig::default()).unwrap();
        let addr = server.addr();
        let mut c = TcpStream::connect(addr).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let r = roundtrip(&mut c, "shutdown");
        assert_eq!(r, "ok draining=1");
        server.shutdown();
        server.shutdown();
        server.join();
        // new connections are refused or go unanswered once draining
        std::thread::sleep(Duration::from_millis(50));
    }
}
