//! Readiness polling for the event-driven front end: a vendored-style
//! shim over POSIX `poll(2)` and `pipe(2)`.
//!
//! The workspace is deliberately crates.io-free, so instead of `mio`/
//! `libc` this module declares the two syscall entry points the event
//! loop needs as `extern "C"` bindings and wraps them in a safe,
//! minimal API: [`poll_ready`] over a caller-owned slice of [`PollEntry`]s,
//! and a [`WakePipe`] self-pipe that lets solver workers (or any other
//! thread) interrupt a sleeping `poll` when a reply is ready to flush.
//!
//! `poll(2)` rather than `epoll(7)` is a deliberate trade: it is
//! portable POSIX (no Linux-only fd lifecycle to manage), carries no
//! registration state that could drift from the connection table, and
//! its O(n)-per-wakeup scan is measurably cheap at the connection
//! counts this server targets (the `BENCH_server.json` capacity sweep
//! drives thousands of connections through it on one core). The shim is
//! `cfg(unix)`; on other platforms the server falls back to the legacy
//! thread-per-connection front end.

#![cfg(unix)]

use std::io;
use std::os::unix::io::RawFd;

/// Readable interest / readiness (POSIX `POLLIN`).
pub const POLLIN: i16 = 0x001;
/// Writable interest / readiness (POSIX `POLLOUT`).
pub const POLLOUT: i16 = 0x004;
/// Error condition (revents only; POSIX `POLLERR`).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (revents only; POSIX `POLLHUP`).
pub const POLLHUP: i16 = 0x010;
/// Invalid fd (revents only; POSIX `POLLNVAL`).
pub const POLLNVAL: i16 = 0x020;

/// Layout-compatible `struct pollfd` (identical on every unix libc).
#[repr(C)]
#[derive(Clone, Copy)]
struct RawPollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

extern "C" {
    // nfds_t is `unsigned long` on the 64-bit unix targets this
    // workspace builds for.
    fn poll(fds: *mut RawPollFd, nfds: u64, timeout: i32) -> i32;
    fn pipe(fds: *mut i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
    fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
}

const F_GETFL: i32 = 3;
const F_SETFL: i32 = 4;
const F_SETFD: i32 = 2;
const FD_CLOEXEC: i32 = 1;
#[cfg(target_os = "linux")]
const O_NONBLOCK: i32 = 0o4000;
#[cfg(not(target_os = "linux"))]
const O_NONBLOCK: i32 = 0x0004;

/// One fd the caller wants readiness for.
#[derive(Clone, Copy, Debug)]
pub struct PollEntry {
    /// The file descriptor.
    pub fd: RawFd,
    /// Requested events (`POLLIN | POLLOUT`).
    pub interest: i16,
    /// Returned events after [`poll_ready`] (includes error conditions).
    pub ready: i16,
}

impl PollEntry {
    /// An entry asking for `interest` on `fd` with no readiness yet.
    pub fn new(fd: RawFd, interest: i16) -> Self {
        Self {
            fd,
            interest,
            ready: 0,
        }
    }

    /// True when the fd is readable (or in an error/hangup state, which
    /// a subsequent `read` surfaces as 0/err — the caller must read to
    /// observe it).
    pub fn readable(&self) -> bool {
        self.ready & (POLLIN | POLLERR | POLLHUP | POLLNVAL) != 0
    }

    /// True when the fd is writable.
    pub fn writable(&self) -> bool {
        self.ready & (POLLOUT | POLLERR | POLLHUP | POLLNVAL) != 0
    }
}

/// Blocks until at least one entry is ready or `timeout_ms` elapses
/// (`-1` blocks indefinitely). Fills each entry's `ready` mask and
/// returns how many entries are ready; `Ok(0)` is a timeout. `EINTR`
/// is retried internally so callers never see spurious failures from
/// signals.
pub fn poll_ready(entries: &mut [PollEntry], timeout_ms: i32) -> io::Result<usize> {
    let mut raw: Vec<RawPollFd> = entries
        .iter()
        .map(|e| RawPollFd {
            fd: e.fd,
            events: e.interest,
            revents: 0,
        })
        .collect();
    loop {
        // SAFETY: `raw` is a live, correctly-sized pollfd array for the
        // duration of the call.
        let rc = unsafe { poll(raw.as_mut_ptr(), raw.len() as u64, timeout_ms) };
        if rc >= 0 {
            for (e, r) in entries.iter_mut().zip(raw.iter()) {
                e.ready = r.revents;
            }
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// A self-pipe: any thread holding the pipe can [`WakePipe::wake`] a
/// poller that includes [`WakePipe::read_fd`] in its entry set. Writes
/// and reads are non-blocking; a full pipe is fine (the wake is already
/// pending) and an empty drain is fine (another drain got there first).
#[derive(Debug)]
pub struct WakePipe {
    read_fd: RawFd,
    write_fd: RawFd,
}

// SAFETY: the pipe fds are only used through atomic read/write syscalls.
unsafe impl Send for WakePipe {}
unsafe impl Sync for WakePipe {}

impl WakePipe {
    /// Creates the pipe with both ends non-blocking and close-on-exec.
    pub fn new() -> io::Result<WakePipe> {
        let mut fds = [0i32; 2];
        // SAFETY: `fds` is a valid 2-element array.
        if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
            return Err(io::Error::last_os_error());
        }
        for fd in fds {
            // SAFETY: fd is a freshly-created pipe end we own.
            unsafe {
                let flags = fcntl(fd, F_GETFL, 0);
                fcntl(fd, F_SETFL, flags | O_NONBLOCK);
                fcntl(fd, F_SETFD, FD_CLOEXEC);
            }
        }
        Ok(WakePipe {
            read_fd: fds[0],
            write_fd: fds[1],
        })
    }

    /// The fd a poller should watch with [`POLLIN`].
    pub fn read_fd(&self) -> RawFd {
        self.read_fd
    }

    /// Makes the read end readable, waking a sleeping poller. Lossy by
    /// design: if the pipe is already full the wake is already pending.
    pub fn wake(&self) {
        let byte = [1u8];
        // SAFETY: write_fd is a live pipe end owned by self; a short or
        // failed write (EAGAIN on a full pipe) is intentionally ignored.
        unsafe {
            let _ = write(self.write_fd, byte.as_ptr(), 1);
        }
    }

    /// Empties the read end so the next [`WakePipe::wake`] edge is
    /// observable again. Call after `poll` reports the read fd ready.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            // SAFETY: read_fd is a live non-blocking pipe end; buf is a
            // valid buffer of the stated length.
            let n = unsafe { read(self.read_fd, buf.as_mut_ptr(), buf.len()) };
            if n <= 0 {
                return; // drained (EAGAIN) or raced with another drain
            }
        }
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        // SAFETY: both fds are owned by self and closed exactly once.
        unsafe {
            close(self.read_fd);
            close(self.write_fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::time::{Duration, Instant};

    #[test]
    fn wake_pipe_interrupts_a_sleeping_poll() {
        let pipe = std::sync::Arc::new(WakePipe::new().unwrap());
        let waker = std::sync::Arc::clone(&pipe);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            waker.wake();
        });
        let mut entries = [PollEntry::new(pipe.read_fd(), POLLIN)];
        let start = Instant::now();
        let n = poll_ready(&mut entries, 5_000).unwrap();
        assert_eq!(n, 1);
        assert!(entries[0].readable());
        assert!(start.elapsed() < Duration::from_secs(4), "poll never woke");
        pipe.drain();
        // drained: an immediate re-poll times out
        let mut entries = [PollEntry::new(pipe.read_fd(), POLLIN)];
        assert_eq!(poll_ready(&mut entries, 0).unwrap(), 0);
        t.join().unwrap();
    }

    #[test]
    fn wake_is_idempotent_and_drain_safe_when_empty() {
        let pipe = WakePipe::new().unwrap();
        pipe.drain(); // empty drain is a no-op
        for _ in 0..1000 {
            pipe.wake(); // far beyond pipe capacity must not block
        }
        let mut entries = [PollEntry::new(pipe.read_fd(), POLLIN)];
        assert_eq!(poll_ready(&mut entries, 0).unwrap(), 1);
        pipe.drain();
    }

    #[test]
    fn poll_reports_tcp_readability() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let mut entries = [PollEntry::new(server_side.as_raw_fd(), POLLIN | POLLOUT)];
        let n = poll_ready(&mut entries, 1_000).unwrap();
        assert!(n >= 1);
        assert!(entries[0].writable(), "fresh socket must be writable");

        client.write_all(b"hello\n").unwrap();
        let mut entries = [PollEntry::new(server_side.as_raw_fd(), POLLIN)];
        let n = poll_ready(&mut entries, 1_000).unwrap();
        assert_eq!(n, 1);
        assert!(entries[0].readable());
        let mut buf = [0u8; 16];
        let got = (&server_side).read(&mut buf).unwrap();
        assert_eq!(&buf[..got], b"hello\n");
    }

    #[test]
    fn poll_times_out_when_nothing_is_ready() {
        let pipe = WakePipe::new().unwrap();
        let mut entries = [PollEntry::new(pipe.read_fd(), POLLIN)];
        let start = Instant::now();
        assert_eq!(poll_ready(&mut entries, 50).unwrap(), 0);
        assert!(start.elapsed() >= Duration::from_millis(45));
    }
}
