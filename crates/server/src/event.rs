//! The event-driven front end: one thread multiplexing every connection.
//!
//! A readiness loop built on the [`crate::netpoll`] shim owns the
//! listener, a [`WakePipe`], and every client connection — all
//! non-blocking, each with its own read/write buffers and newline
//! framing. Parsed requests go through the same
//! [`crate::server::route_inline`] router as the legacy front end:
//! `stats`, `stats2`, `place-incremental`, `shutdown`, and every error
//! are answered inline by this thread (so metrics stay readable even
//! with the solver pool saturated), while `solve` is dispatched into the
//! bounded pool with a completion-queue reply sink. Workers push the
//! finished line and wake the poller; the loop flushes it on the right
//! connection in request order.
//!
//! # Reply ordering
//!
//! The wire contract is one reply per line, in order. Each connection
//! keeps an ordered queue of reply slots: inline replies are born ready,
//! solves start pending and are fulfilled by worker completions. Only
//! the ready *prefix* is flushed, so a fast `stats` pipelined behind a
//! slow `solve` on the same connection still waits its turn (order is
//! part of the protocol), while on separate connections it is answered
//! immediately — monitoring traffic should use its own connection.
//!
//! # Shutdown
//!
//! `shutdown` (or [`crate::Server::shutdown`]) raises the stop flag and
//! self-connects, which wakes the poll. The loop then fails any
//! still-pending slots with `err shutting-down`, best-effort flushes
//! every buffer (the `ok draining=1` reply in particular), and closes.

#![cfg(unix)]

use crate::netpoll::{poll_ready, PollEntry, WakePipe, POLLERR, POLLIN, POLLNVAL, POLLOUT};
use crate::pool::SolveJob;
use crate::protocol::{ErrCode, WireError};
use crate::server::{route_inline, Routed, Shared};
use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Poll timeout: the loop re-checks the stop flag at least this often
/// even if no fd ever becomes ready (wakes normally arrive via the
/// listener self-connect or the wake pipe long before this).
const POLL_TIMEOUT_MS: i32 = 100;

/// Per-read chunk size; connections needing more just loop.
const READ_CHUNK: usize = 16 * 1024;

/// How long shutdown keeps flushing unsent replies before closing.
const DRAIN_FLUSH: Duration = Duration::from_secs(2);

/// Worker→event-loop reply transport: finished lines keyed by slot
/// token, plus the self-pipe that interrupts a sleeping poll.
struct Completions {
    queue: parking_lot::Mutex<Vec<(u64, String)>>,
    wake: WakePipe,
}

impl Completions {
    fn push(&self, token: u64, line: String) {
        self.queue.lock().push((token, line));
        self.wake.wake();
    }

    fn drain(&self) -> Vec<(u64, String)> {
        std::mem::take(&mut *self.queue.lock())
    }
}

/// One ordered reply obligation on a connection.
enum Slot {
    /// Reply known — flushable once every earlier slot is too.
    Ready(String),
    /// A solve in flight in the pool, identified by completion token.
    Pending(u64),
}

/// One multiplexed client connection.
struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet framed into a complete line.
    rbuf: Vec<u8>,
    /// Reply bytes accepted by the protocol but not yet by the kernel.
    wbuf: Vec<u8>,
    /// Ordered reply slots (front = oldest request).
    slots: VecDeque<Slot>,
    /// Client half-closed its sending side (EOF seen).
    read_closed: bool,
    /// Unrecoverable socket error; reap without further IO.
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            slots: VecDeque::new(),
            read_closed: false,
            dead: false,
        }
    }

    /// Marks the pending slot `token` ready with its reply line.
    fn fulfill(&mut self, token: u64, line: String) {
        for slot in self.slots.iter_mut() {
            if matches!(slot, Slot::Pending(t) if *t == token) {
                *slot = Slot::Ready(line);
                return;
            }
        }
    }

    /// Moves the ready prefix of the slot queue into the write buffer.
    fn pump(&mut self) {
        while let Some(Slot::Ready(_)) = self.slots.front() {
            let Some(Slot::Ready(line)) = self.slots.pop_front() else {
                unreachable!()
            };
            self.wbuf.extend_from_slice(line.as_bytes());
            self.wbuf.push(b'\n');
        }
    }

    /// Writes as much of the buffer as the socket accepts right now.
    fn flush(&mut self) {
        while !self.wbuf.is_empty() {
            match self.stream.write(&self.wbuf) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => {
                    self.wbuf.drain(..n);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
    }

    /// Reads everything currently available; returns complete lines.
    fn read_lines(&mut self) -> Vec<String> {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.read_closed = true;
                    break;
                }
                Ok(n) => self.rbuf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        let mut lines = Vec::new();
        let mut start = 0;
        while let Some(pos) = self.rbuf[start..].iter().position(|&b| b == b'\n') {
            let end = start + pos;
            lines.push(String::from_utf8_lossy(&self.rbuf[start..end]).into_owned());
            start = end + 1;
        }
        self.rbuf.drain(..start);
        lines
    }

    /// True once nothing more can happen on this connection.
    fn finished(&self) -> bool {
        self.dead || (self.read_closed && self.wbuf.is_empty() && self.slots.is_empty())
    }
}

/// Routes one framed line and queues its reply slot.
fn handle_line(
    conn_id: u64,
    line: &str,
    conn: &mut Conn,
    shared: &Shared,
    completions: &Arc<Completions>,
    token_conn: &mut HashMap<u64, u64>,
    next_token: &mut u64,
) {
    let line = line.trim();
    if line.is_empty() {
        return; // blank lines draw no reply, as in legacy mode
    }
    // same panic fence as the legacy per-line handler: a routing bug
    // costs this request an `err internal`, never the event loop
    let routed =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| route_inline(line, shared)))
            .unwrap_or_else(|_| {
                Routed::Inline(
                    WireError::new(ErrCode::Internal, "request handler panicked").to_line(),
                )
            });
    match routed {
        Routed::Inline(reply) => conn.slots.push_back(Slot::Ready(reply)),
        Routed::Solve(spec) => {
            let now = Instant::now();
            let deadline = spec.deadline_ms.map(|ms| now + Duration::from_millis(ms));
            let token = *next_token;
            *next_token += 1;
            let sink = {
                let completions = Arc::clone(completions);
                Box::new(move |reply: String| completions.push(token, reply))
            };
            let job = SolveJob::new(*spec, now, deadline, sink);
            match shared.pool.lock().submit(job) {
                Ok(()) => {
                    conn.slots.push_back(Slot::Pending(token));
                    token_conn.insert(token, conn_id);
                }
                Err(e) => {
                    if e.code == ErrCode::Overloaded {
                        shared.metrics.overloaded.inc();
                    }
                    conn.slots.push_back(Slot::Ready(e.to_line()));
                }
            }
        }
    }
}

/// The readiness loop: owns the listener and every connection until
/// shutdown. Runs on the dedicated `hgp-event` thread.
pub(crate) fn event_loop(listener: TcpListener, shared: Arc<Shared>) {
    if listener.set_nonblocking(true).is_err() {
        // no way to multiplex a blocking listener — serve legacy-style
        return crate::server::accept_loop(listener, shared);
    }
    let completions = Arc::new(Completions {
        queue: parking_lot::Mutex::new(Vec::new()),
        wake: WakePipe::new().expect("create event-loop wake pipe"),
    });
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut token_conn: HashMap<u64, u64> = HashMap::new();
    let mut next_conn_id: u64 = 0;
    let mut next_token: u64 = 0;
    let mut entries: Vec<PollEntry> = Vec::new();
    let mut slot_ids: Vec<u64> = Vec::new();

    while !shared.stopping() {
        // (re)build the poll set: listener, wake pipe, then every conn
        entries.clear();
        slot_ids.clear();
        entries.push(PollEntry::new(listener.as_raw_fd(), POLLIN));
        entries.push(PollEntry::new(completions.wake.read_fd(), POLLIN));
        for (&id, c) in conns.iter() {
            let mut interest: i16 = 0;
            if !c.read_closed {
                interest |= POLLIN;
            }
            if !c.wbuf.is_empty() {
                interest |= POLLOUT;
            }
            entries.push(PollEntry::new(c.stream.as_raw_fd(), interest));
            slot_ids.push(id);
        }
        if poll_ready(&mut entries, POLL_TIMEOUT_MS).is_err() {
            continue; // non-EINTR poll failure: retry (stop flag breaks us out)
        }
        if shared.stopping() {
            break;
        }

        // 1. worker completions: fulfill slots and flush immediately so a
        //    finished solve never waits for unrelated socket traffic
        completions.wake.drain();
        for (token, line) in completions.drain() {
            if let Some(cid) = token_conn.remove(&token) {
                if let Some(c) = conns.get_mut(&cid) {
                    c.fulfill(token, line);
                    c.pump();
                    c.flush();
                }
            }
        }

        // 2. new connections (accept until the backlog is empty)
        if entries[0].readable() {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        shared.conn_opened();
                        conns.insert(next_conn_id, Conn::new(stream));
                        next_conn_id += 1;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }

        // 3. per-connection IO on the fds poll reported
        for (i, entry) in entries.iter().enumerate().skip(2) {
            let id = slot_ids[i - 2];
            let Some(conn) = conns.get_mut(&id) else {
                continue;
            };
            if entry.ready & (POLLERR | POLLNVAL) != 0 {
                conn.dead = true;
                continue;
            }
            if entry.readable() {
                for line in conn.read_lines() {
                    handle_line(
                        id,
                        &line,
                        conns.get_mut(&id).expect("conn alive while handling"),
                        &shared,
                        &completions,
                        &mut token_conn,
                        &mut next_token,
                    );
                }
            }
            let conn = conns.get_mut(&id).expect("conn alive after routing");
            conn.pump();
            if !conn.wbuf.is_empty() {
                conn.flush();
            }
        }

        // 4. reap finished connections (and forget their pending tokens —
        //    a completion for a gone client is dropped on the floor)
        conns.retain(|_, c| {
            if c.finished() {
                for slot in &c.slots {
                    if let Slot::Pending(t) = slot {
                        token_conn.remove(t);
                    }
                }
                shared.conn_closed();
                false
            } else {
                true
            }
        });
    }

    // drain: every still-pending slot answers shutting-down (its job was
    // dropped by the pool drain), then flush what we can and close
    let draining = WireError::new(ErrCode::ShuttingDown, "server is draining").to_line();
    for conn in conns.values_mut() {
        for slot in conn.slots.iter_mut() {
            if matches!(slot, Slot::Pending(_)) {
                *slot = Slot::Ready(draining.clone());
            }
        }
        conn.pump();
    }
    let deadline = Instant::now() + DRAIN_FLUSH;
    while Instant::now() < deadline {
        let mut unsent = false;
        for conn in conns.values_mut() {
            if !conn.dead && !conn.wbuf.is_empty() {
                conn.flush();
                unsent |= !conn.dead && !conn.wbuf.is_empty();
            }
        }
        if !unsent {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    for _ in conns.drain() {
        shared.conn_closed();
    }
}
