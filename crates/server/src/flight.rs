//! Single-flight coalescing for expensive keyed builds.
//!
//! N concurrent solves sharing a distribution fingerprint used to
//! trigger N redundant Räcke-distribution builds — exactly the
//! congestion-oblivious waste the paper's hierarchical decomposition
//! exists to avoid, replayed at the serving layer. A [`FlightGroup`]
//! deduplicates them: the first caller to [`FlightGroup::join`] a key
//! becomes the **leader** and runs the build; every concurrent caller
//! becomes a **follower** that parks until the leader publishes.
//!
//! # Determinism contract
//!
//! Followers may only reuse the leader's value when that value is a
//! pure function of the key. The distribution fingerprint covers every
//! input of the cold-start build (graph, weights, trees, seed, MWU
//! knobs), so the leader's build is bit-identical to the build each
//! follower would have performed — coalescing changes *when* work
//! happens, never *what* the answer is. Warm-started (`near=1`) builds
//! depend on cache state and are therefore never routed through a
//! flight (see `pool.rs`).
//!
//! # Panic safety
//!
//! The leader's [`LeaderGuard`] publishes on drop: if the leader
//! unwinds mid-build, followers are unparked with
//! [`FlightError::LeaderPanicked`] instead of hanging, and the key is
//! removed so the next request starts a fresh flight. This is what
//! turns a leader panic into N `err internal` replies rather than N
//! parked worker threads.

use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Why a follower's wait ended without a value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FlightError {
    /// The leader's build returned an error (message preserved so the
    /// follower can reply exactly as the leader did).
    Failed(String),
    /// The leader panicked mid-build; the panic was caught at the
    /// worker isolation boundary and the flight was poisoned.
    LeaderPanicked,
}

enum FlightState<T> {
    Pending,
    Done(Result<T, FlightError>),
}

struct Flight<T> {
    state: Mutex<FlightState<T>>,
    cv: Condvar,
}

impl<T: Clone> Flight<T> {
    fn publish(&self, outcome: Result<T, FlightError>) {
        *self.state.lock() = FlightState::Done(outcome);
        self.cv.notify_all();
    }
}

/// The outcome of a follower's wait.
#[derive(Debug)]
pub enum FollowerOutcome<T> {
    /// The leader published this value.
    Ready(T),
    /// The leader published an error (or panicked).
    Err(FlightError),
    /// The caller's deadline expired before the leader published. The
    /// flight itself continues for the other followers.
    DeadlineExpired,
}

/// A parked follower's handle onto an in-flight build.
pub struct Follower<T> {
    flight: Arc<Flight<T>>,
}

impl<T: Clone> Follower<T> {
    /// Parks until the leader publishes or `deadline` passes.
    pub fn wait(self, deadline: Option<Instant>) -> FollowerOutcome<T> {
        let mut state = self.flight.state.lock();
        loop {
            match &*state {
                FlightState::Done(Ok(v)) => return FollowerOutcome::Ready(v.clone()),
                FlightState::Done(Err(e)) => return FollowerOutcome::Err(e.clone()),
                FlightState::Pending => match deadline {
                    Some(d) => {
                        let remaining = d.saturating_duration_since(Instant::now());
                        if remaining.is_zero() || self.flight.cv.wait_for(&mut state, remaining) {
                            // re-check once: the publish may have raced
                            // the timeout
                            if let FlightState::Done(outcome) = &*state {
                                return match outcome {
                                    Ok(v) => FollowerOutcome::Ready(v.clone()),
                                    Err(e) => FollowerOutcome::Err(e.clone()),
                                };
                            }
                            return FollowerOutcome::DeadlineExpired;
                        }
                    }
                    None => self.flight.cv.wait(&mut state),
                },
            }
        }
    }
}

/// The leader's obligation to publish. Dropping the guard without
/// calling [`LeaderGuard::publish`] — i.e. unwinding — poisons the
/// flight with [`FlightError::LeaderPanicked`] so followers never hang.
pub struct LeaderGuard<'g, T: Clone> {
    group: &'g FlightGroup<T>,
    key: u64,
    flight: Arc<Flight<T>>,
    published: bool,
}

impl<T: Clone> LeaderGuard<'_, T> {
    /// Publishes the build outcome to every follower and retires the
    /// key (later joiners start a fresh flight — on success they will
    /// find the value in the cache instead).
    pub fn publish(mut self, outcome: Result<T, String>) {
        self.published = true;
        self.group.retire(self.key);
        self.flight
            .publish(outcome.map_err(FlightError::Failed).map_err(|e| match e {
                FlightError::Failed(m) => FlightError::Failed(m),
                other => other,
            }));
    }
}

impl<T: Clone> Drop for LeaderGuard<'_, T> {
    fn drop(&mut self) {
        if !self.published {
            self.group.retire(self.key);
            self.flight.publish(Err(FlightError::LeaderPanicked));
        }
    }
}

/// How [`FlightGroup::join`] admitted the caller.
pub enum Ticket<'g, T: Clone> {
    /// First in: run the build, then [`LeaderGuard::publish`].
    Leader(LeaderGuard<'g, T>),
    /// A build for this key is already running: park on it.
    Follower(Follower<T>),
}

/// Deduplicates concurrent builds by key (one leader, N followers).
pub struct FlightGroup<T> {
    inflight: Mutex<HashMap<u64, Arc<Flight<T>>>>,
}

impl<T: Clone> Default for FlightGroup<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone> FlightGroup<T> {
    /// An empty group.
    pub fn new() -> Self {
        Self {
            inflight: Mutex::new(HashMap::new()),
        }
    }

    /// Joins the flight for `key`: the first concurrent caller leads,
    /// the rest follow.
    pub fn join(&self, key: u64) -> Ticket<'_, T> {
        let mut map = self.inflight.lock();
        if let Some(flight) = map.get(&key) {
            return Ticket::Follower(Follower {
                flight: Arc::clone(flight),
            });
        }
        let flight = Arc::new(Flight {
            state: Mutex::new(FlightState::Pending),
            cv: Condvar::new(),
        });
        map.insert(key, Arc::clone(&flight));
        Ticket::Leader(LeaderGuard {
            group: self,
            key,
            flight,
            published: false,
        })
    }

    /// Keys currently in flight (diagnostics only).
    pub fn len(&self) -> usize {
        self.inflight.lock().len()
    }

    /// True when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn retire(&self, key: u64) {
        self.inflight.lock().remove(&key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    #[test]
    fn single_caller_leads_and_key_retires_after_publish() {
        let g: FlightGroup<u32> = FlightGroup::new();
        let Ticket::Leader(guard) = g.join(7) else {
            panic!("first caller must lead");
        };
        assert_eq!(g.len(), 1);
        guard.publish(Ok(42));
        assert!(g.is_empty(), "published key must retire");
        // a later join starts fresh (leader again), not a stale follower
        assert!(matches!(g.join(7), Ticket::Leader(_)));
    }

    #[test]
    fn followers_share_one_build() {
        const FOLLOWERS: usize = 8;
        let g: Arc<FlightGroup<u64>> = Arc::new(FlightGroup::new());
        let builds = Arc::new(AtomicU64::new(0));
        let results: Vec<u64> = std::thread::scope(|s| {
            let mut handles = Vec::new();
            for _ in 0..=FOLLOWERS {
                let g = Arc::clone(&g);
                let builds = Arc::clone(&builds);
                handles.push(s.spawn(move || match g.join(1) {
                    Ticket::Leader(guard) => {
                        // slow build so every other thread parks
                        std::thread::sleep(Duration::from_millis(100));
                        builds.fetch_add(1, Ordering::Relaxed);
                        guard.publish(Ok(1234));
                        1234u64
                    }
                    Ticket::Follower(f) => match f.wait(None) {
                        FollowerOutcome::Ready(v) => v,
                        other => panic!("follower got {other:?}"),
                    },
                }));
            }
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(builds.load(Ordering::Relaxed), 1, "exactly one build");
        assert!(results.iter().all(|&v| v == 1234));
        assert!(g.is_empty());
    }

    #[test]
    fn leader_panic_unparks_followers_with_an_error() {
        let g: Arc<FlightGroup<u32>> = Arc::new(FlightGroup::new());
        std::thread::scope(|s| {
            let leader = {
                let g = Arc::clone(&g);
                s.spawn(move || {
                    let Ticket::Leader(_guard) = g.join(3) else {
                        panic!("must lead");
                    };
                    std::thread::sleep(Duration::from_millis(80));
                    panic!("leader bug"); // guard drops unpublished
                })
            };
            // park several followers while the leader is "building"
            let followers: Vec<_> = (0..4)
                .map(|_| {
                    let g = Arc::clone(&g);
                    s.spawn(move || {
                        // retry until we observe the in-flight entry
                        loop {
                            match g.join(3) {
                                Ticket::Follower(f) => return f.wait(None),
                                Ticket::Leader(guard) => {
                                    // raced ahead of the leader thread:
                                    // back off and rejoin
                                    guard.publish(Err("not yet".into()));
                                    std::thread::sleep(Duration::from_millis(5));
                                }
                            }
                        }
                    })
                })
                .collect();
            assert!(leader.join().is_err(), "leader must have panicked");
            for f in followers {
                match f.join().unwrap() {
                    FollowerOutcome::Err(FlightError::LeaderPanicked) => {}
                    FollowerOutcome::Err(FlightError::Failed(m)) => {
                        assert_eq!(m, "not yet", "unexpected failure {m:?}");
                    }
                    other => panic!("follower must see the panic, got {other:?}"),
                }
            }
        });
        assert!(g.is_empty(), "panicked flight must retire its key");
    }

    #[test]
    fn leader_failure_message_reaches_followers() {
        let g: FlightGroup<u32> = FlightGroup::new();
        let Ticket::Leader(guard) = g.join(9) else {
            panic!()
        };
        let Ticket::Follower(f) = g.join(9) else {
            panic!("second join must follow")
        };
        guard.publish(Err("decomposition failed: graph is disconnected".into()));
        match f.wait(None) {
            FollowerOutcome::Err(FlightError::Failed(m)) => {
                assert!(m.contains("disconnected"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn follower_deadline_expires_without_killing_the_flight() {
        let g: FlightGroup<u32> = FlightGroup::new();
        let Ticket::Leader(guard) = g.join(4) else {
            panic!()
        };
        let Ticket::Follower(expired) = g.join(4) else {
            panic!()
        };
        let outcome = expired.wait(Some(Instant::now() + Duration::from_millis(20)));
        assert!(matches!(outcome, FollowerOutcome::DeadlineExpired));
        // the flight is still live for patient followers
        let Ticket::Follower(patient) = g.join(4) else {
            panic!("flight must still be in-flight")
        };
        guard.publish(Ok(5));
        match patient.wait(None) {
            FollowerOutcome::Ready(v) => assert_eq!(v, 5),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn distinct_keys_fly_independently() {
        let g: FlightGroup<u32> = FlightGroup::new();
        let Ticket::Leader(a) = g.join(1) else {
            panic!()
        };
        let Ticket::Leader(b) = g.join(2) else {
            panic!("different key must get its own leader")
        };
        assert_eq!(g.len(), 2);
        a.publish(Ok(1));
        b.publish(Ok(2));
        assert!(g.is_empty());
    }
}
