//! The solver pool: bounded queueing, deadlines, graceful degradation.
//!
//! `solve` requests are pushed onto a bounded queue drained by N worker
//! threads. A full queue rejects immediately with `overloaded` — admission
//! control beats unbounded latency. Each request may carry a soft deadline;
//! the worker checks it at dequeue, after the (possibly cached) Räcke
//! distribution is ready, and between per-tree DP batches (a batch is one
//! [`Parallelism`] worker-width of trees fanned out via
//! `par_map_indexed`, so the deadline bounds work *started*, as §7.2
//! specifies, at batch granularity):
//!
//! * deadline already blown with no tree solved → fall back to the fast
//!   `hgp-baselines` path (multilevel k-way + hierarchy-aware refinement),
//!   reply tagged `degraded=1 mode=baseline`;
//! * blown mid-distribution with ≥1 tree solved → best assignment so far,
//!   `degraded=1 mode=partial`;
//! * otherwise the full Theorem-1 sweep, `degraded=0 mode=full`.
//!
//! Degraded replies are still *valid placements* — only the approximation
//! guarantee is surrendered, never correctness.
//!
//! # Panic isolation and supervision
//!
//! Every job runs inside `catch_unwind`: a panicking solve answers
//! `err internal` and the worker thread survives (`solve-panics` counts
//! these). As a second line of defence a supervisor thread polls the
//! worker handles and respawns any thread that died anyway — a bug that
//! slips past the isolation boundary costs one request, never a pool slot.
//! `workers-alive` / `worker-deaths` in `stats` expose both layers.
//!
//! # Single-flight coalescing
//!
//! Cold-start distribution builds are deduplicated through a
//! [`FlightGroup`] keyed by `distribution_fingerprint`: when N concurrent
//! solves share a fingerprint, one worker (the leader) runs
//! `build_distribution` while the rest park as followers and reuse the
//! leader's `Arc<Distribution>` (reply `cache=shared`, counted in
//! `cache.coalesced`). Because the fingerprint covers every input of the
//! cold build, the shared distribution is bit-identical to what each
//! follower would have built — determinism is preserved. Warm-started
//! `near=1` builds depend on cache state and never enter a flight. A
//! leader that panics unparks its followers with `err internal` via the
//! flight's poison-on-drop guard; a follower whose deadline expires while
//! parked degrades to the baseline path like any other blown deadline.

use crate::cache::DecompCache;
use crate::flight::{FlightError, FlightGroup, FollowerOutcome, Ticket};
use crate::metrics::Metrics;
use crate::protocol::{ErrCode, SolveSpec, WireError};
use hgp_baselines::kway::{kway_partition, KwayOpts};
use hgp_baselines::refine::{refine, RefineOpts};
use hgp_core::fingerprint::{distribution_fingerprint, topology_fingerprint};
use hgp_core::solver::SolverOptions;
use hgp_core::tree_solver::solve_rooted_with;
use hgp_core::{
    Assignment, DpOptions, HgpError, MultilevelOptions, Parallelism, Solve, SolveTrace,
};
use hgp_decomp::{par_map_indexed, Distribution};
use hgp_multilevel::solve_multilevel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often the supervisor checks for dead workers.
const SUPERVISE_EVERY: Duration = Duration::from_millis(20);

/// Where a finished reply line goes. Both front ends speak through this:
/// the legacy threaded front end captures an `mpsc::Sender` (see
/// [`channel_reply`]), the event loop captures a completion-queue push
/// plus a [`crate::netpoll::WakePipe`] wake. If the pool shuts down with
/// the job still queued, the sink is dropped uncalled — for the channel
/// sink that disconnects the receiver, which the connection surfaces as
/// `shutting-down`.
pub type ReplySink = Box<dyn FnOnce(String) + Send>;

/// A [`ReplySink`] that sends the reply into an mpsc channel (the legacy
/// thread-per-connection front end, and most tests).
pub fn channel_reply(tx: mpsc::Sender<String>) -> ReplySink {
    Box::new(move |line| {
        // receiver gone = client hung up; nothing to do
        let _ = tx.send(line);
    })
}

/// One queued solve.
pub struct SolveJob {
    /// The parsed request.
    pub spec: SolveSpec,
    /// When the request was accepted (latency is measured from here).
    pub enqueued: Instant,
    /// Absolute deadline derived from `deadline-ms`, if any.
    pub deadline: Option<Instant>,
    /// Where the reply line goes.
    pub reply: ReplySink,
    /// Test hook: panic *outside* the isolation boundary, killing the
    /// worker thread outright. Not reachable from the wire — exists so
    /// tests can exercise the supervisor's respawn path.
    pub crash_worker: bool,
    /// Test hook: panic *inside* the isolation boundary, as a solver bug
    /// would. Not reachable from the wire — exercises the `err internal`
    /// catch_unwind path.
    pub panic_solve: bool,
    /// Test hook: panic inside the distribution build *after* winning
    /// single-flight leadership. Not reachable from the wire — exercises
    /// the leader-panic path (followers must be unparked with
    /// `err internal`, never left hanging).
    pub panic_in_build: bool,
}

impl SolveJob {
    /// A job with no test hooks, replying into `reply`.
    pub fn new(
        spec: SolveSpec,
        enqueued: Instant,
        deadline: Option<Instant>,
        reply: ReplySink,
    ) -> Self {
        Self {
            spec,
            enqueued,
            deadline,
            reply,
            crash_worker: false,
            panic_solve: false,
            panic_in_build: false,
        }
    }
}

/// The per-request facts a worker needs while solving (everything on
/// [`SolveJob`] except the reply sink, which is consumed separately).
struct JobView<'a> {
    spec: &'a SolveSpec,
    enqueued: Instant,
    deadline: Option<Instant>,
    panic_in_build: bool,
}

/// Everything a worker thread needs; cloneable so the supervisor can
/// respawn replacements.
#[derive(Clone)]
struct WorkerCtx {
    rx: Arc<parking_lot::Mutex<mpsc::Receiver<SolveJob>>>,
    cache: Arc<DecompCache>,
    metrics: Arc<Metrics>,
    stop: Arc<AtomicBool>,
    /// Worker width each solve may fan its tree sampling / per-tree DPs
    /// across (never affects the answer — see DESIGN.md §8).
    parallelism: Parallelism,
    /// Signature-DP engine options applied to every solve.
    dp: DpOptions,
    /// In-flight cold distribution builds, shared across workers so
    /// concurrent same-fingerprint solves coalesce onto one build.
    flights: Arc<FlightGroup<Arc<Distribution>>>,
}

fn spawn_worker(id: usize, ctx: WorkerCtx) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("hgp-solver-{id}"))
        .spawn(move || loop {
            if ctx.stop.load(Ordering::Acquire) {
                break;
            }
            let job = ctx.rx.lock().recv_timeout(Duration::from_millis(50));
            match job {
                Ok(job) => {
                    if job.crash_worker {
                        // deliberately outside catch_unwind (see SolveJob)
                        panic!("crash-worker test hook");
                    }
                    let SolveJob {
                        spec,
                        enqueued,
                        deadline,
                        reply,
                        panic_solve,
                        panic_in_build,
                        crash_worker: _,
                    } = job;
                    let view = JobView {
                        spec: &spec,
                        enqueued,
                        deadline,
                        panic_in_build,
                    };
                    let busy_start = Instant::now();
                    // isolation boundary: a panicking solve costs this
                    // request, not the worker thread
                    let line = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        if panic_solve {
                            panic!("panic-solve test hook");
                        }
                        run_solve(&view, &ctx)
                    }))
                    .unwrap_or_else(|payload| {
                        ctx.metrics.solve_panics.inc();
                        ctx.metrics.solve_err.inc();
                        let e = HgpError::from_panic(payload);
                        WireError::new(ErrCode::Internal, e.to_string()).to_line()
                    });
                    // busy time feeds the utilization metric: executing,
                    // not idle-waiting on the queue
                    ctx.metrics
                        .pool_busy_us
                        .add(busy_start.elapsed().as_micros() as u64);
                    reply(line);
                }
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        })
        .expect("spawn solver worker")
}

/// A supervised pool of solver workers behind a bounded queue.
pub struct SolverPool {
    tx: mpsc::SyncSender<SolveJob>,
    workers: Arc<parking_lot::Mutex<Vec<JoinHandle<()>>>>,
    supervisor: Option<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
}

impl SolverPool {
    /// Spawns `workers` threads draining a queue of at most
    /// `queue_capacity` pending solves, plus a supervisor that respawns
    /// workers that die. Each solve may additionally fan out across
    /// `parallelism` threads (so peak thread demand is
    /// `workers × parallelism` — see DESIGN.md §8 for sizing guidance).
    pub fn new(
        workers: usize,
        queue_capacity: usize,
        parallelism: Parallelism,
        dp: DpOptions,
        cache: Arc<DecompCache>,
        metrics: Arc<Metrics>,
    ) -> Self {
        let (tx, rx) = mpsc::sync_channel::<SolveJob>(queue_capacity.max(1));
        let ctx = WorkerCtx {
            rx: Arc::new(parking_lot::Mutex::new(rx)),
            cache,
            metrics: Arc::clone(&metrics),
            stop: Arc::new(AtomicBool::new(false)),
            parallelism,
            dp,
            flights: Arc::new(FlightGroup::new()),
        };
        let count = workers.max(1);
        let workers: Vec<JoinHandle<()>> =
            (0..count).map(|i| spawn_worker(i, ctx.clone())).collect();
        metrics.workers_alive.set(count as u64);
        let workers = Arc::new(parking_lot::Mutex::new(workers));
        let stop = Arc::clone(&ctx.stop);
        let supervisor = {
            let workers = Arc::clone(&workers);
            let next_id = AtomicUsize::new(count);
            std::thread::Builder::new()
                .name("hgp-pool-supervisor".to_string())
                .spawn(move || {
                    while !ctx.stop.load(Ordering::Acquire) {
                        std::thread::sleep(SUPERVISE_EVERY);
                        if ctx.stop.load(Ordering::Acquire) {
                            break;
                        }
                        let mut ws = workers.lock();
                        for slot in ws.iter_mut() {
                            if slot.is_finished() && !ctx.stop.load(Ordering::Acquire) {
                                let id = next_id.fetch_add(1, Ordering::Relaxed);
                                let dead = std::mem::replace(slot, spawn_worker(id, ctx.clone()));
                                let _ = dead.join(); // reap; panic payload discarded
                                metrics.worker_deaths.inc();
                            }
                        }
                        let alive = ws.iter().filter(|w| !w.is_finished()).count();
                        metrics.workers_alive.set(alive as u64);
                    }
                })
                .expect("spawn pool supervisor")
        };
        Self {
            tx,
            workers,
            supervisor: Some(supervisor),
            stop,
        }
    }

    /// Enqueues a job; rejects with `overloaded` when the queue is full.
    pub fn submit(&self, job: SolveJob) -> Result<(), WireError> {
        match self.tx.try_send(job) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => Err(WireError::new(
                ErrCode::Overloaded,
                "solver queue full, retry later",
            )),
            Err(TrySendError::Disconnected(_)) => {
                Err(WireError::new(ErrCode::ShuttingDown, "server is draining"))
            }
        }
    }

    /// Signals workers to stop and joins them (supervisor first, so nothing
    /// respawns during teardown). Queued jobs not yet picked up are dropped
    /// (their reply channels disconnect, which the connection threads
    /// surface as `shutting-down`).
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(s) = self.supervisor.take() {
            let _ = s.join();
        }
        for w in self.workers.lock().drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for SolverPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// How a solve reply was produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    Full,
    Partial,
    Baseline,
}

impl Mode {
    fn as_str(self) -> &'static str {
        match self {
            Mode::Full => "full",
            Mode::Partial => "partial",
            Mode::Baseline => "baseline",
        }
    }
}

fn expired(deadline: Option<Instant>) -> bool {
    deadline.is_some_and(|d| Instant::now() >= d)
}

/// Per-tree profiling facts accumulated into the request's
/// [`SolveTrace`]: `(dp_nanos, repair_nanos, dp_entries, dp_pruned)`.
type TreeFacts = (u64, u64, u64, u64);

/// Executes one solve end to end and formats the reply line.
fn run_solve(job: &JobView<'_>, ctx: &WorkerCtx) -> String {
    // queue wait = accept to dequeue, recorded for every job (even ones
    // that go on to fail) — it measures the queue, not the solve
    let queue_wait = job.enqueued.elapsed();
    ctx.metrics.queue_wait.record_duration_us(queue_wait);
    match solve_inner(job, ctx, queue_wait) {
        Ok(line) => line,
        Err(e) => {
            match e.code {
                ErrCode::BadRequest | ErrCode::GraphTooLarge | ErrCode::MachineTooLarge => {
                    ctx.metrics.bad_requests.inc()
                }
                _ => ctx.metrics.solve_err.inc(),
            }
            e.to_line()
        }
    }
}

/// Obtains the (possibly cached, possibly coalesced) Räcke distribution
/// for a cold request. `Ok(None)` means the caller's deadline expired
/// while parked as a follower — degrade to baseline, don't error.
fn cold_distribution(
    job: &JobView<'_>,
    ctx: &WorkerCtx,
    inst: &hgp_core::Instance,
    opts: &SolverOptions,
    key: u64,
    topo: u64,
    cache_status: &mut &'static str,
) -> Result<Option<Arc<Distribution>>, WireError> {
    match ctx.flights.join(key) {
        Ticket::Leader(guard) => {
            if job.panic_in_build {
                // test hook: hold leadership long enough for racing
                // followers to park, then unwind with the guard
                // unpublished so its Drop poisons the flight
                std::thread::sleep(Duration::from_millis(60));
                panic!("panic-in-build test hook");
            }
            // double-check (uncounted — not a client lookup): a previous
            // leader may have published and retired its flight between
            // our cache miss and our join
            if let Some(d) = ctx.cache.peek(key) {
                *cache_status = "hit";
                guard.publish(Ok(Arc::clone(&d)));
                return Ok(Some(d));
            }
            *cache_status = "miss";
            ctx.metrics.cache_builds.inc();
            match Solve::new(inst, &job.spec.machine)
                .options(*opts)
                .distribution()
            {
                Ok(built) => {
                    let d = Arc::new(built);
                    ctx.cache.insert(key, topo, Arc::clone(&d));
                    guard.publish(Ok(Arc::clone(&d)));
                    Ok(Some(d))
                }
                Err(e) => {
                    let msg = format!("decomposition failed: {e}");
                    guard.publish(Err(msg.clone()));
                    Err(WireError::new(ErrCode::SolveFailed, msg))
                }
            }
        }
        Ticket::Follower(f) => match f.wait(job.deadline) {
            FollowerOutcome::Ready(d) => {
                *cache_status = "shared";
                ctx.metrics.cache_coalesced.inc();
                Ok(Some(d))
            }
            FollowerOutcome::Err(FlightError::Failed(msg)) => {
                // the build itself failed; every follower replies exactly
                // as the leader did
                Err(WireError::new(ErrCode::SolveFailed, msg))
            }
            FollowerOutcome::Err(FlightError::LeaderPanicked) => Err(WireError::new(
                ErrCode::Internal,
                "distribution build panicked in the coalesced leader",
            )),
            FollowerOutcome::DeadlineExpired => Ok(None),
        },
    }
}

fn solve_inner(
    job: &JobView<'_>,
    ctx: &WorkerCtx,
    queue_wait: Duration,
) -> Result<String, WireError> {
    let spec = job.spec;
    let inst = spec.instance()?;
    let h = &spec.machine;
    inst.check_feasible(h)
        .map_err(|e| WireError::new(ErrCode::SolveFailed, format!("infeasible instance: {e:?}")))?;
    let opts = SolverOptions::builder()
        .trees(spec.trees)
        .units(spec.units)
        .threads(ctx.parallelism)
        .seed(spec.seed)
        .dp(ctx.dp)
        .trace(spec.trace)
        .multilevel(MultilevelOptions {
            enabled: spec.multilevel,
            ..Default::default()
        })
        .build();
    if spec.multilevel {
        return run_multilevel(job, &inst, &ctx.metrics, &opts, queue_wait);
    }

    let mut cache_status: &'static str = "skip";
    let mut solved = 0usize;
    let mut best: Option<(usize, Assignment, f64)> = None;
    let mut mode = Mode::Baseline;
    // per-stage profile, rendered as `trace.*` tokens when `trace=1`
    let mut dist_nanos = 0u64;
    let mut sweep_nanos = 0u64;
    let mut trees_total = 0u64;
    let mut trees_ok = 0u64;
    let mut dp_cpu = 0u64;
    let mut repair_cpu = 0u64;
    let mut dp_entries = 0u64;
    let mut dp_pruned = 0u64;

    if !expired(job.deadline) {
        let key = distribution_fingerprint(&inst, &opts);
        let topo = topology_fingerprint(inst.graph());
        let dist_start = Instant::now();
        let dist = match ctx.cache.get(key) {
            Some(d) => {
                cache_status = "hit";
                Some(d)
            }
            None => {
                // similarity tier (opt-in): a cached distribution for a
                // topologically identical graph warm-starts the MWU
                // sampling. The result depends on cache state, so it is
                // NOT inserted — the exact key must keep meaning "the
                // cold-start build for these inputs" for near=0 requests
                // — and never coalesced: followers may only share a value
                // that is a pure function of the fingerprint.
                let warm = if spec.near {
                    ctx.cache.get_near(topo)
                } else {
                    None
                };
                match warm {
                    Some(w) => {
                        cache_status = "near";
                        ctx.metrics.cache_builds.inc();
                        let built = Solve::new(&inst, h)
                            .options(opts)
                            .distribution_warm(&w)
                            .map_err(|e| {
                                WireError::new(
                                    ErrCode::SolveFailed,
                                    format!("decomposition failed: {e}"),
                                )
                            })?;
                        Some(Arc::new(built))
                    }
                    None => {
                        // cold build: single-flight so concurrent
                        // same-fingerprint requests share one build
                        cold_distribution(job, ctx, &inst, &opts, key, topo, &mut cache_status)?
                    }
                }
            }
        };
        dist_nanos = dist_start.elapsed().as_nanos() as u64;
        if let Some(dist) = dist {
            let total = dist.trees.len();
            trees_total = total as u64;
            // batch-wise fan-out: one worker-width of trees per batch, the
            // soft deadline re-checked between batches. Serial parallelism
            // degenerates to batches of one — the pre-parallel behaviour.
            let sweep_start = Instant::now();
            while solved < total && !expired(job.deadline) {
                let end = (solved + opts.parallelism.workers(total - solved)).min(total);
                let outcomes = par_map_indexed(opts.parallelism, end - solved, |k| {
                    let dt = &dist.trees[solved + k];
                    solve_rooted_with(&dt.tree, &dt.task_of_leaf, &inst, h, opts.rounding, opts.dp)
                        .ok()
                        .map(|rep| {
                            // map back to G and score by true Equation-1 cost
                            let cost = rep.assignment.cost(&inst, h);
                            let facts: TreeFacts = (
                                rep.dp_nanos,
                                rep.repair_nanos,
                                rep.dp_entries as u64,
                                rep.dp_pruned as u64,
                            );
                            (rep.assignment, cost, facts)
                        })
                });
                // deterministic reduction: tree order, strict improvement only
                for (k, outcome) in outcomes.into_iter().enumerate() {
                    if let Some((assignment, cost, facts)) = outcome {
                        trees_ok += 1;
                        dp_cpu += facts.0;
                        repair_cpu += facts.1;
                        dp_entries += facts.2;
                        dp_pruned += facts.3;
                        if best.as_ref().is_none_or(|(_, _, c)| cost < *c) {
                            best = Some((solved + k, assignment, cost));
                        }
                    }
                }
                solved = end;
            }
            sweep_nanos = sweep_start.elapsed().as_nanos() as u64;
            mode = if solved == total {
                Mode::Full
            } else {
                Mode::Partial
            };
        }
        // dist == None: the deadline expired while parked behind the
        // flight leader — fall through to the baseline path below
    }

    let (mut assignment, mut detail) = match best {
        Some((tree, a, _)) => (a, format!("tree={tree} trees-solved={solved}")),
        None => {
            // Deadline blown before any tree finished (or every DP was
            // capacity-infeasible on a degraded request): fast baseline.
            mode = Mode::Baseline;
            let mut rng = StdRng::seed_from_u64(spec.seed);
            let part = kway_partition(
                inst.graph(),
                inst.demands(),
                h.num_leaves(),
                &KwayOpts::default(),
                &mut rng,
            );
            let mut a = Assignment::new(part, h);
            refine(&mut a, &inst, h, &RefineOpts::default());
            (a, "trees-solved=0".to_string())
        }
    };
    if spec.refine && mode != Mode::Baseline {
        refine(&mut assignment, &inst, h, &RefineOpts::default());
    }

    let cost = assignment.cost(&inst, h);
    let worst = assignment.violation_report(&inst, h).worst_factor();
    let degraded = mode != Mode::Full;
    if degraded {
        ctx.metrics.solve_degraded.inc();
    } else {
        ctx.metrics.solve_ok.inc();
    }
    let elapsed = job.enqueued.elapsed();
    ctx.metrics.solve_latency.record_duration_us(elapsed);

    detail = format!(
        "cost={} degraded={} mode={} {} cache={} worst-factor={} elapsed-us={}",
        cost,
        u8::from(degraded),
        mode.as_str(),
        detail,
        cache_status,
        worst,
        elapsed.as_micros()
    );
    if spec.want_assignment {
        let leaves: Vec<String> = assignment.leaves().iter().map(|l| l.to_string()).collect();
        detail.push_str(&format!(" assignment={}", leaves.join(",")));
    }
    if spec.trace {
        let mut tr = SolveTrace::new();
        tr.stage("queue-wait", queue_wait.as_nanos() as u64);
        tr.stage("distribution", dist_nanos);
        tr.stage("sweep", sweep_nanos);
        tr.cpu("dp-cpu", dp_cpu);
        tr.cpu("repair-cpu", repair_cpu);
        tr.count("cache-hit", u64::from(cache_status == "hit"));
        tr.count("trees-total", trees_total);
        tr.count("trees-solved", trees_ok);
        tr.count("dp-entries", dp_entries);
        tr.count("dp-pruned", dp_pruned);
        detail.push_str(&tr.wire_tokens("trace."));
    }
    Ok(format!("ok {detail}"))
}

/// The multilevel route: coarsen → exact core on the coarse graph →
/// project back with hierarchy-aware FM. No distribution cache (the
/// coarse graph is request-specific) and no per-tree deadline batching —
/// the V-cycle is a single bounded pass sized to finish even at large
/// `n`. The reply mirrors the flat path's token set plus `ml-*` facts.
fn run_multilevel(
    job: &JobView<'_>,
    inst: &hgp_core::Instance,
    metrics: &Metrics,
    opts: &SolverOptions,
    queue_wait: Duration,
) -> Result<String, WireError> {
    let spec = job.spec;
    let h = &spec.machine;
    let rep = solve_multilevel(inst, h, opts).map_err(|e| {
        WireError::new(
            ErrCode::SolveFailed,
            format!("multilevel solve failed: {e}"),
        )
    })?;
    let mut assignment = rep.assignment;
    if spec.refine {
        // optional extra baseline-refine sweep on top of the built-in
        // hierarchy-aware passes, within the placement's own budget
        refine(&mut assignment, inst, h, &RefineOpts::default());
    }
    let cost = assignment.cost(inst, h);
    let worst = assignment.violation_report(inst, h).worst_factor();
    metrics.solve_ok.inc();
    let elapsed = job.enqueued.elapsed();
    metrics.solve_latency.record_duration_us(elapsed);

    let mut detail = format!(
        "cost={} degraded=0 mode=multilevel ml-levels={} ml-coarsest={} ml-reduction={:.2} \
         ml-refine-gain={} cache=skip worst-factor={} elapsed-us={}",
        cost,
        rep.levels,
        rep.coarsest_nodes,
        rep.reduction,
        rep.refine_gain,
        worst,
        elapsed.as_micros()
    );
    if spec.want_assignment {
        let leaves: Vec<String> = assignment.leaves().iter().map(|l| l.to_string()).collect();
        detail.push_str(&format!(" assignment={}", leaves.join(",")));
    }
    if spec.trace {
        let mut tr = rep.trace.unwrap_or_default();
        tr.stage("queue-wait", queue_wait.as_nanos() as u64);
        detail.push_str(&tr.wire_tokens("trace."));
    }
    Ok(format!("ok {detail}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{GraphSpec, Request};

    fn pool() -> (SolverPool, Arc<DecompCache>, Arc<Metrics>) {
        let cache = Arc::new(DecompCache::new(8));
        let metrics = Arc::new(Metrics::new());
        (
            SolverPool::new(
                2,
                4,
                Parallelism::serial(),
                DpOptions::default(),
                Arc::clone(&cache),
                Arc::clone(&metrics),
            ),
            cache,
            metrics,
        )
    }

    fn solve_spec(line: &str) -> SolveSpec {
        match Request::parse(line).unwrap() {
            Request::Solve(s) => *s,
            _ => panic!("not a solve"),
        }
    }

    fn run(pool: &SolverPool, spec: SolveSpec, deadline: Option<Duration>) -> String {
        let (tx, rx) = mpsc::channel();
        let now = Instant::now();
        pool.submit(SolveJob::new(
            spec,
            now,
            deadline.map(|d| now + d),
            channel_reply(tx),
        ))
        .unwrap();
        rx.recv_timeout(Duration::from_secs(60)).unwrap()
    }

    const LINE: &str =
        "solve graph=gen:clustered:2x4:5 machine=2x2:4,1,0 demand=0.4 trees=4 seed=7";

    #[test]
    fn full_solve_and_cache_reuse() {
        let (pool, cache, metrics) = pool();
        let a = run(&pool, solve_spec(LINE), None);
        assert!(a.starts_with("ok "), "{a}");
        assert!(a.contains("degraded=0"), "{a}");
        assert!(a.contains("mode=full"), "{a}");
        assert!(a.contains("cache=miss"), "{a}");
        let b = run(&pool, solve_spec(LINE), None);
        assert!(b.contains("cache=hit"), "{b}");
        assert!(cache.hits() >= 1);
        // identical request → identical cost
        let cost = |s: &str| {
            s.split_whitespace()
                .find_map(|kv| kv.strip_prefix("cost="))
                .unwrap()
                .to_string()
        };
        assert_eq!(cost(&a), cost(&b));
        assert_eq!(metrics.solve_ok.get(), 2);
    }

    #[test]
    fn near_flag_warm_starts_from_a_topology_twin() {
        let (pool, cache, _metrics) = pool();
        // same topology, different edge weights → different exact keys
        let heavy = "solve graph=edges:4:0-1:1.0,1-2:1.0,2-3:1.0,0-3:1.0 \
                     machine=2x2:4,1,0 demand=0.4 trees=4 seed=7";
        let light = "solve graph=edges:4:0-1:2.0,1-2:0.5,2-3:2.0,0-3:0.5 \
                     machine=2x2:4,1,0 demand=0.4 trees=4 seed=7";
        let a = run(&pool, solve_spec(heavy), None);
        assert!(a.contains("cache=miss"), "{a}");
        // without near=1 a reweighted twin is a plain miss
        let b = run(&pool, solve_spec(light), None);
        assert!(b.contains("cache=miss"), "{b}");
        assert_eq!(cache.near_hits(), 0);
        // with near=1 and a fresh exact key the twin warm-starts the build
        let near_line = format!(
            "solve graph=edges:4:0-1:2.0,1-2:0.5,2-3:2.0,0-3:0.5 \
             machine=2x2:4,1,0 demand=0.4 trees=4 seed=8 near=1"
        );
        let c = run(&pool, solve_spec(&near_line), None);
        assert!(c.starts_with("ok "), "{c}");
        assert!(c.contains("cache=near"), "{c}");
        assert!(c.contains("mode=full"), "{c}");
        assert_eq!(cache.near_hits(), 1);
        // warm-built distributions are cache-state-dependent and must not
        // be stored under the exact key: re-running the near request still
        // reports a near hit, not an exact one
        let d = run(&pool, solve_spec(&near_line), None);
        assert!(d.contains("cache=near"), "{d}");
        assert_eq!(cache.near_hits(), 2);
    }

    #[test]
    fn multilevel_route_solves_and_reports_ml_facts() {
        let (pool, cache, metrics) = pool();
        let line =
            "solve graph=gen:mesh:20x20:5 machine=2x2:4,1,0 trees=4 seed=7 multilevel=1 trace=1";
        let reply = run(&pool, solve_spec(line), None);
        assert!(reply.starts_with("ok "), "{reply}");
        assert!(reply.contains("mode=multilevel"), "{reply}");
        assert!(reply.contains("degraded=0"), "{reply}");
        assert!(reply.contains("ml-levels="), "{reply}");
        assert!(reply.contains("trace.ml.coarsen-us="), "{reply}");
        assert!(reply.contains("trace.queue-wait-us="), "{reply}");
        // the multilevel route never touches the distribution cache
        assert!(reply.contains("cache=skip"), "{reply}");
        assert_eq!(cache.hits() + cache.misses(), 0);
        assert_eq!(metrics.solve_ok.get(), 1);
    }

    #[test]
    fn expired_deadline_degrades_to_baseline() {
        let (pool, _cache, metrics) = pool();
        let reply = run(&pool, solve_spec(LINE), Some(Duration::ZERO));
        assert!(reply.starts_with("ok "), "{reply}");
        assert!(reply.contains("degraded=1"), "{reply}");
        assert!(reply.contains("mode=baseline"), "{reply}");
        assert_eq!(metrics.solve_degraded.get(), 1);
    }

    #[test]
    fn infeasible_instances_fail_cleanly() {
        let (pool, _cache, metrics) = pool();
        // 9 tasks × demand 1.0 > 4 leaves
        let mut spec = solve_spec(LINE);
        spec.graph = GraphSpec::parse("gen:mesh:3x3:1").unwrap();
        spec.demand = Some(1.0);
        let reply = run(&pool, spec, None);
        assert!(reply.starts_with("err solve-failed"), "{reply}");
        assert_eq!(metrics.solve_err.get(), 1);
    }

    #[test]
    fn full_queue_rejects_overloaded() {
        let cache = Arc::new(DecompCache::new(2));
        let metrics = Arc::new(Metrics::new());
        // one slow worker, queue of 1: the third submit must bounce
        let pool = SolverPool::new(
            1,
            1,
            Parallelism::serial(),
            DpOptions::default(),
            cache,
            metrics,
        );
        let (tx, _rx) = mpsc::channel();
        let now = Instant::now();
        let mut rejected = 0;
        for _ in 0..16 {
            let job = SolveJob::new(solve_spec(LINE), now, None, channel_reply(tx.clone()));
            if let Err(e) = pool.submit(job) {
                assert_eq!(e.code, ErrCode::Overloaded);
                rejected += 1;
            }
        }
        assert!(rejected > 0, "bounded queue never pushed back");
    }

    #[test]
    fn parallel_solve_matches_serial_reply() {
        // same request through a serial pool and a 4-wide pool: identical
        // cost, tree pick, and assignment (determinism across Parallelism)
        let line = format!("{LINE} assignment=1");
        let reply_with = |par: Parallelism| {
            let cache = Arc::new(DecompCache::new(2));
            let metrics = Arc::new(Metrics::new());
            let pool = SolverPool::new(1, 4, par, DpOptions::default(), cache, metrics);
            run(&pool, solve_spec(&line), None)
        };
        let serial = reply_with(Parallelism::serial());
        let parallel = reply_with(Parallelism::Fixed(4));
        let field = |s: &str, key: &str| {
            s.split_whitespace()
                .find_map(|kv| kv.strip_prefix(&format!("{key}=")))
                .map(str::to_string)
        };
        for key in ["cost", "tree", "trees-solved", "assignment", "mode"] {
            assert_eq!(
                field(&serial, key),
                field(&parallel, key),
                "{key} differs: serial={serial} parallel={parallel}"
            );
        }
    }

    #[test]
    fn supervisor_respawns_crashed_workers() {
        let cache = Arc::new(DecompCache::new(2));
        let metrics = Arc::new(Metrics::new());
        let pool = SolverPool::new(
            2,
            4,
            Parallelism::serial(),
            DpOptions::default(),
            cache,
            Arc::clone(&metrics),
        );
        assert_eq!(metrics.workers_alive.get(), 2);

        // kill one worker outright (bypasses the isolation boundary)
        let (tx, rx) = mpsc::channel();
        pool.submit(SolveJob {
            crash_worker: true,
            ..SolveJob::new(solve_spec(LINE), Instant::now(), None, channel_reply(tx))
        })
        .unwrap();
        // the dying worker never replies; its channel just disconnects
        assert!(rx.recv_timeout(Duration::from_secs(10)).is_err());

        // the supervisor must notice, count the death, and restore the pool
        let deadline = Instant::now() + Duration::from_secs(10);
        while metrics.worker_deaths.get() == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(metrics.worker_deaths.get(), 1, "death not counted");
        let deadline = Instant::now() + Duration::from_secs(10);
        while metrics.workers_alive.get() < 2 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(metrics.workers_alive.get(), 2, "worker not respawned");

        // and the pool still solves
        let reply = run(&pool, solve_spec(LINE), None);
        assert!(reply.starts_with("ok "), "{reply}");
    }

    #[test]
    fn panicking_solve_is_isolated_to_err_internal() {
        let cache = Arc::new(DecompCache::new(2));
        let metrics = Arc::new(Metrics::new());
        let pool = SolverPool::new(
            1,
            4,
            Parallelism::serial(),
            DpOptions::default(),
            cache,
            Arc::clone(&metrics),
        );

        // a panic inside the boundary answers `err internal` ...
        let (tx, rx) = mpsc::channel();
        pool.submit(SolveJob {
            panic_solve: true,
            ..SolveJob::new(solve_spec(LINE), Instant::now(), None, channel_reply(tx))
        })
        .unwrap();
        let reply = rx.recv_timeout(Duration::from_secs(30)).unwrap();
        assert!(reply.starts_with("err internal "), "{reply}");
        assert!(reply.contains("panic-solve test hook"), "{reply}");
        assert_eq!(metrics.solve_panics.get(), 1);

        // ... and the very same worker thread keeps serving
        let reply = run(&pool, solve_spec(LINE), None);
        assert!(reply.starts_with("ok "), "{reply}");
        assert_eq!(metrics.worker_deaths.get(), 0);
    }

    #[test]
    fn racing_cold_fingerprints_coalesce_onto_one_build() {
        const CLIENTS: usize = 9;
        let cache = Arc::new(DecompCache::new(8));
        let metrics = Arc::new(Metrics::new());
        // enough workers that every request is in a worker simultaneously
        let pool = SolverPool::new(
            CLIENTS,
            CLIENTS,
            Parallelism::serial(),
            DpOptions::default(),
            cache,
            Arc::clone(&metrics),
        );
        // a build slow enough that the OS preempts the leader mid-build
        // even on one core — otherwise a single worker can drain the
        // whole queue before its siblings ever get scheduled
        let slow = "solve graph=gen:mesh:24x24:3 machine=2x2:4,1,0 demand=0.005 trees=4 seed=11";
        let (tx, rx) = mpsc::channel();
        let now = Instant::now();
        for _ in 0..CLIENTS {
            pool.submit(SolveJob::new(
                solve_spec(slow),
                now,
                None,
                channel_reply(tx.clone()),
            ))
            .unwrap();
        }
        let replies: Vec<String> = (0..CLIENTS)
            .map(|_| rx.recv_timeout(Duration::from_secs(60)).unwrap())
            .collect();
        // exactly one expensive build ran, no matter how the race lands
        assert_eq!(
            metrics.cache_builds.get(),
            1,
            "coalescing failed: {replies:?}"
        );
        assert!(
            metrics.cache_coalesced.get() >= 1,
            "no request joined the flight as a follower"
        );
        // every reply is ok, full-mode, and bit-identical in cost
        let cost = |s: &str| {
            s.split_whitespace()
                .find_map(|kv| kv.strip_prefix("cost="))
                .unwrap()
                .to_string()
        };
        let first = cost(&replies[0]);
        for r in &replies {
            assert!(r.starts_with("ok "), "{r}");
            assert!(r.contains("mode=full"), "{r}");
            assert_eq!(cost(r), first, "coalesced replies diverged: {r}");
            assert!(
                r.contains("cache=miss") || r.contains("cache=shared") || r.contains("cache=hit"),
                "{r}"
            );
        }
        // the leader's reply says miss; followers say shared
        assert_eq!(
            replies.iter().filter(|r| r.contains("cache=miss")).count(),
            1
        );
    }

    #[test]
    fn leader_panic_in_build_unparks_followers_with_err_internal() {
        let cache = Arc::new(DecompCache::new(8));
        let metrics = Arc::new(Metrics::new());
        let pool = SolverPool::new(
            4,
            8,
            Parallelism::serial(),
            DpOptions::default(),
            cache,
            Arc::clone(&metrics),
        );
        // the poisoned job wins leadership first (idle pool), then panics
        // inside the build after a grace period the followers use to park
        let (ltx, lrx) = mpsc::channel();
        pool.submit(SolveJob {
            panic_in_build: true,
            ..SolveJob::new(solve_spec(LINE), Instant::now(), None, channel_reply(ltx))
        })
        .unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let (ftx, frx) = mpsc::channel();
        for _ in 0..3 {
            pool.submit(SolveJob::new(
                solve_spec(LINE),
                Instant::now(),
                None,
                channel_reply(ftx.clone()),
            ))
            .unwrap();
        }
        let leader = lrx.recv_timeout(Duration::from_secs(30)).unwrap();
        assert!(leader.starts_with("err internal "), "{leader}");
        assert!(leader.contains("panic-in-build test hook"), "{leader}");
        // followers parked on the flight get err internal, not a hang —
        // any that raced past the retired flight instead rebuilt and
        // answered ok (both are correct; hanging is the bug)
        let mut follower_errs = 0;
        for _ in 0..3 {
            let r = frx.recv_timeout(Duration::from_secs(30)).unwrap();
            if r.starts_with("err internal ") {
                assert!(r.contains("coalesced leader"), "{r}");
                follower_errs += 1;
            } else {
                assert!(r.starts_with("ok "), "{r}");
            }
        }
        assert!(follower_errs >= 1, "no follower observed the leader panic");
        assert_eq!(metrics.solve_panics.get(), 1);
        // the poisoned flight retired: a fresh request builds and succeeds
        let reply = run(&pool, solve_spec(LINE), None);
        assert!(reply.starts_with("ok "), "{reply}");
    }

    #[test]
    fn pool_busy_time_accumulates() {
        let (pool, _cache, metrics) = pool();
        assert_eq!(metrics.pool_busy_us.get(), 0);
        let reply = run(&pool, solve_spec(LINE), None);
        assert!(reply.starts_with("ok "), "{reply}");
        assert!(metrics.pool_busy_us.get() > 0, "busy time not recorded");
    }
}
