//! The solver pool: bounded queueing, deadlines, graceful degradation.
//!
//! `solve` requests are pushed onto a bounded queue drained by N worker
//! threads. A full queue rejects immediately with `overloaded` — admission
//! control beats unbounded latency. Each request may carry a soft deadline;
//! the worker checks it at dequeue, after the (possibly cached) Räcke
//! distribution is ready, and between per-tree DP solves:
//!
//! * deadline already blown with no tree solved → fall back to the fast
//!   `hgp-baselines` path (multilevel k-way + hierarchy-aware refinement),
//!   reply tagged `degraded=1 mode=baseline`;
//! * blown mid-distribution with ≥1 tree solved → best assignment so far,
//!   `degraded=1 mode=partial`;
//! * otherwise the full Theorem-1 sweep, `degraded=0 mode=full`.
//!
//! Degraded replies are still *valid placements* — only the approximation
//! guarantee is surrendered, never correctness.

use crate::cache::DecompCache;
use crate::metrics::Metrics;
use crate::protocol::{ErrCode, SolveSpec, WireError};
use hgp_baselines::kway::{kway_partition, KwayOpts};
use hgp_baselines::refine::{refine, RefineOpts};
use hgp_core::fingerprint::distribution_fingerprint;
use hgp_core::solver::{build_distribution, SolverOptions};
use hgp_core::tree_solver::solve_rooted;
use hgp_core::{Assignment, Rounding};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One queued solve.
pub struct SolveJob {
    /// The parsed request.
    pub spec: SolveSpec,
    /// When the request was accepted (latency is measured from here).
    pub enqueued: Instant,
    /// Absolute deadline derived from `deadline-ms`, if any.
    pub deadline: Option<Instant>,
    /// Where the reply line goes.
    pub reply: mpsc::Sender<String>,
}

/// A fixed pool of solver workers behind a bounded queue.
pub struct SolverPool {
    tx: mpsc::SyncSender<SolveJob>,
    workers: Vec<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
}

impl SolverPool {
    /// Spawns `workers` threads draining a queue of at most
    /// `queue_capacity` pending solves.
    pub fn new(
        workers: usize,
        queue_capacity: usize,
        cache: Arc<DecompCache>,
        metrics: Arc<Metrics>,
    ) -> Self {
        let (tx, rx) = mpsc::sync_channel::<SolveJob>(queue_capacity.max(1));
        let rx = Arc::new(parking_lot::Mutex::new(rx));
        let stop = Arc::new(AtomicBool::new(false));
        let workers = (0..workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let cache = Arc::clone(&cache);
                let metrics = Arc::clone(&metrics);
                let stop = Arc::clone(&stop);
                std::thread::Builder::new()
                    .name(format!("hgp-solver-{i}"))
                    .spawn(move || loop {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        let job = rx.lock().recv_timeout(Duration::from_millis(50));
                        match job {
                            Ok(job) => {
                                let line = run_solve(&job, &cache, &metrics);
                                // receiver gone = client hung up; nothing to do
                                let _ = job.reply.send(line);
                            }
                            Err(RecvTimeoutError::Timeout) => continue,
                            Err(RecvTimeoutError::Disconnected) => break,
                        }
                    })
                    .expect("spawn solver worker")
            })
            .collect();
        Self { tx, workers, stop }
    }

    /// Enqueues a job; rejects with `overloaded` when the queue is full.
    pub fn submit(&self, job: SolveJob) -> Result<(), WireError> {
        match self.tx.try_send(job) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => Err(WireError::new(
                ErrCode::Overloaded,
                "solver queue full, retry later",
            )),
            Err(TrySendError::Disconnected(_)) => {
                Err(WireError::new(ErrCode::ShuttingDown, "server is draining"))
            }
        }
    }

    /// Signals workers to stop and joins them. Queued jobs not yet picked
    /// up are dropped (their reply channels disconnect, which the
    /// connection threads surface as `shutting-down`).
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for SolverPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// How a solve reply was produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    Full,
    Partial,
    Baseline,
}

impl Mode {
    fn as_str(self) -> &'static str {
        match self {
            Mode::Full => "full",
            Mode::Partial => "partial",
            Mode::Baseline => "baseline",
        }
    }
}

fn expired(deadline: Option<Instant>) -> bool {
    deadline.is_some_and(|d| Instant::now() >= d)
}

/// Executes one solve end to end and formats the reply line.
fn run_solve(job: &SolveJob, cache: &DecompCache, metrics: &Metrics) -> String {
    match solve_inner(job, cache, metrics) {
        Ok(line) => line,
        Err(e) => {
            match e.code {
                ErrCode::BadRequest => metrics.inc(&metrics.bad_requests),
                _ => metrics.inc(&metrics.solve_err),
            }
            e.to_line()
        }
    }
}

fn solve_inner(
    job: &SolveJob,
    cache: &DecompCache,
    metrics: &Metrics,
) -> Result<String, WireError> {
    let spec = &job.spec;
    let inst = spec.instance()?;
    let h = &spec.machine;
    inst.check_feasible(h)
        .map_err(|e| WireError::new(ErrCode::SolveFailed, format!("infeasible instance: {e:?}")))?;
    let opts = SolverOptions {
        num_trees: spec.trees,
        rounding: Rounding::with_units(spec.units),
        threads: 1,
        seed: spec.seed,
        ..Default::default()
    };

    let mut cache_status = "skip";
    let mut solved = 0usize;
    let mut best: Option<(usize, Assignment, f64)> = None;
    let mut mode = Mode::Baseline;

    if !expired(job.deadline) {
        let key = distribution_fingerprint(&inst, &opts);
        let dist = match cache.get(key) {
            Some(d) => {
                cache_status = "hit";
                d
            }
            None => {
                cache_status = "miss";
                let d = Arc::new(build_distribution(&inst, &opts).map_err(|e| {
                    WireError::new(ErrCode::SolveFailed, format!("decomposition failed: {e}"))
                })?);
                cache.insert(key, Arc::clone(&d));
                d
            }
        };
        let total = dist.trees.len();
        for (i, dt) in dist.trees.iter().enumerate() {
            if expired(job.deadline) {
                break;
            }
            if let Ok(rep) = solve_rooted(&dt.tree, &dt.task_of_leaf, &inst, h, opts.rounding) {
                // map back to G and compare by true Equation-1 cost,
                // deterministic tie-break on tree index
                let cost = rep.assignment.cost(&inst, h);
                if best.as_ref().is_none_or(|(_, _, c)| cost < *c) {
                    best = Some((i, rep.assignment, cost));
                }
            }
            solved = i + 1;
        }
        mode = if solved == total {
            Mode::Full
        } else {
            Mode::Partial
        };
    }

    let (mut assignment, mut detail) = match best {
        Some((tree, a, _)) => (a, format!("tree={tree} trees-solved={solved}")),
        None => {
            // Deadline blown before any tree finished (or every DP was
            // capacity-infeasible on a degraded request): fast baseline.
            mode = Mode::Baseline;
            let mut rng = StdRng::seed_from_u64(spec.seed);
            let part = kway_partition(
                inst.graph(),
                inst.demands(),
                h.num_leaves(),
                &KwayOpts::default(),
                &mut rng,
            );
            let mut a = Assignment::new(part, h);
            refine(&mut a, &inst, h, &RefineOpts::default());
            (a, "trees-solved=0".to_string())
        }
    };
    if spec.refine && mode != Mode::Baseline {
        refine(&mut assignment, &inst, h, &RefineOpts::default());
    }

    let cost = assignment.cost(&inst, h);
    let worst = assignment.violation_report(&inst, h).worst_factor();
    let degraded = mode != Mode::Full;
    if degraded {
        metrics.inc(&metrics.solve_degraded);
    } else {
        metrics.inc(&metrics.solve_ok);
    }
    let elapsed = job.enqueued.elapsed();
    metrics.solve_latency.record(elapsed);

    detail = format!(
        "cost={} degraded={} mode={} {} cache={} worst-factor={} elapsed-us={}",
        cost,
        u8::from(degraded),
        mode.as_str(),
        detail,
        cache_status,
        worst,
        elapsed.as_micros()
    );
    if spec.want_assignment {
        let leaves: Vec<String> = assignment.leaves().iter().map(|l| l.to_string()).collect();
        detail.push_str(&format!(" assignment={}", leaves.join(",")));
    }
    Ok(format!("ok {detail}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{GraphSpec, Request};

    fn pool() -> (SolverPool, Arc<DecompCache>, Arc<Metrics>) {
        let cache = Arc::new(DecompCache::new(8));
        let metrics = Arc::new(Metrics::new());
        (
            SolverPool::new(2, 4, Arc::clone(&cache), Arc::clone(&metrics)),
            cache,
            metrics,
        )
    }

    fn solve_spec(line: &str) -> SolveSpec {
        match Request::parse(line).unwrap() {
            Request::Solve(s) => *s,
            _ => panic!("not a solve"),
        }
    }

    fn run(pool: &SolverPool, spec: SolveSpec, deadline: Option<Duration>) -> String {
        let (tx, rx) = mpsc::channel();
        let now = Instant::now();
        pool.submit(SolveJob {
            spec,
            enqueued: now,
            deadline: deadline.map(|d| now + d),
            reply: tx,
        })
        .unwrap();
        rx.recv_timeout(Duration::from_secs(60)).unwrap()
    }

    const LINE: &str =
        "solve graph=gen:clustered:2x4:5 machine=2x2:4,1,0 demand=0.4 trees=4 seed=7";

    #[test]
    fn full_solve_and_cache_reuse() {
        let (pool, cache, metrics) = pool();
        let a = run(&pool, solve_spec(LINE), None);
        assert!(a.starts_with("ok "), "{a}");
        assert!(a.contains("degraded=0"), "{a}");
        assert!(a.contains("mode=full"), "{a}");
        assert!(a.contains("cache=miss"), "{a}");
        let b = run(&pool, solve_spec(LINE), None);
        assert!(b.contains("cache=hit"), "{b}");
        assert!(cache.hits() >= 1);
        // identical request → identical cost
        let cost = |s: &str| {
            s.split_whitespace()
                .find_map(|kv| kv.strip_prefix("cost="))
                .unwrap()
                .to_string()
        };
        assert_eq!(cost(&a), cost(&b));
        assert_eq!(metrics.get(&metrics.solve_ok), 2);
    }

    #[test]
    fn expired_deadline_degrades_to_baseline() {
        let (pool, _cache, metrics) = pool();
        let reply = run(&pool, solve_spec(LINE), Some(Duration::ZERO));
        assert!(reply.starts_with("ok "), "{reply}");
        assert!(reply.contains("degraded=1"), "{reply}");
        assert!(reply.contains("mode=baseline"), "{reply}");
        assert_eq!(metrics.get(&metrics.solve_degraded), 1);
    }

    #[test]
    fn infeasible_instances_fail_cleanly() {
        let (pool, _cache, metrics) = pool();
        // 9 tasks × demand 1.0 > 4 leaves
        let mut spec = solve_spec(LINE);
        spec.graph = GraphSpec::parse("gen:mesh:3x3:1").unwrap();
        spec.demand = Some(1.0);
        let reply = run(&pool, spec, None);
        assert!(reply.starts_with("err solve-failed"), "{reply}");
        assert_eq!(metrics.get(&metrics.solve_err), 1);
    }

    #[test]
    fn full_queue_rejects_overloaded() {
        let cache = Arc::new(DecompCache::new(2));
        let metrics = Arc::new(Metrics::new());
        // one slow worker, queue of 1: the third submit must bounce
        let pool = SolverPool::new(1, 1, cache, metrics);
        let (tx, _rx) = mpsc::channel();
        let now = Instant::now();
        let mut rejected = 0;
        for _ in 0..16 {
            let job = SolveJob {
                spec: solve_spec(LINE),
                enqueued: now,
                deadline: None,
                reply: tx.clone(),
            };
            if let Err(e) = pool.submit(job) {
                assert_eq!(e.code, ErrCode::Overloaded);
                rejected += 1;
            }
        }
        assert!(rejected > 0, "bounded queue never pushed back");
    }
}
