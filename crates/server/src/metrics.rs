//! Service metrics on the `hgp-obs` registry: typed counters, gauges and
//! histograms behind stable wire names.
//!
//! Every metric lives in a [`Registry`] and is recorded through the typed
//! `hgp-obs` handles (plain atomics — hot paths never serialise on a
//! lock). The registry renders the versioned `stats2` reply directly; the
//! legacy `stats` reply is kept byte-compatible with the pre-registry
//! format so existing scrapers keep working. The old→new name mapping is
//! documented in `docs/PROTOCOL.md`.

use hgp_obs::{Counter, Gauge, Histogram, Registry};
use std::sync::Arc;

/// The server-wide metrics registry, shared by all threads.
///
/// Each field is an [`Arc`] handle into the embedded [`Registry`], so hot
/// paths record through field access (`metrics.solve_ok.inc()`) while the
/// `stats2` reply renders straight from the registry in registration
/// order.
#[derive(Debug)]
pub struct Metrics {
    registry: Registry,
    /// Request lines received (parse failures included). Wire: `req.lines`.
    pub requests: Arc<Counter>,
    /// Requests rejected as unparseable or semantically invalid.
    /// Wire: `req.bad`.
    pub bad_requests: Arc<Counter>,
    /// Solves answered from the full pipeline within deadline.
    /// Wire: `solve.ok`.
    pub solve_ok: Arc<Counter>,
    /// Solves answered degraded (baseline fallback or partial
    /// distribution). Wire: `solve.degraded`.
    pub solve_degraded: Arc<Counter>,
    /// Solves that failed outright (infeasible, disconnected, …).
    /// Wire: `solve.err`.
    pub solve_err: Arc<Counter>,
    /// Solves rejected because the queue was full. Wire: `solve.overloaded`.
    pub overloaded: Arc<Counter>,
    /// `place-incremental` operations applied successfully. Wire: `incr.ops`.
    pub incr_ops: Arc<Counter>,
    /// Sessions currently open. Wire: `sessions.open`.
    pub sessions_open: Arc<Gauge>,
    /// Solver-pool workers currently alive (maintained by the pool
    /// supervisor). Wire: `pool.workers-alive`.
    pub workers_alive: Arc<Gauge>,
    /// Worker threads that died (escaped the panic-isolation boundary) and
    /// were respawned by the supervisor. Wire: `pool.worker-deaths`.
    pub worker_deaths: Arc<Counter>,
    /// Solves that panicked and were caught at the isolation boundary
    /// (answered `err internal`; the worker survived).
    /// Wire: `pool.solve-panics`.
    pub solve_panics: Arc<Counter>,
    /// Decomposition-cache hits, mirrored from the cache's own counters at
    /// snapshot time. Wire: `cache.hits`.
    cache_hits: Arc<Gauge>,
    /// Decomposition-cache misses, mirrored like `cache_hits`.
    /// Wire: `cache.misses`.
    cache_misses: Arc<Gauge>,
    /// Similarity-tier cache hits (a topology twin warm-started the
    /// build), mirrored like `cache_hits`. `stats2`-only — the legacy
    /// `stats` reply predates the tier and stays byte-compatible.
    /// Wire: `cache.near-hits`.
    cache_near_hits: Arc<Gauge>,
    /// Distribution builds actually executed (cold or warm). Unlike
    /// `cache.misses` — which counts *lookups* that missed — this counts
    /// the expensive `build_distribution` calls themselves, so
    /// `misses − builds` is the work single-flight coalescing saved.
    /// `stats2`-only. Wire: `cache.builds`.
    pub cache_builds: Arc<Counter>,
    /// Solves that joined an in-flight build as a follower and reused the
    /// leader's distribution (reply tagged `cache=shared`). `stats2`-only.
    /// Wire: `cache.coalesced`.
    pub cache_coalesced: Arc<Counter>,
    /// Cumulative microseconds workers spent executing solves (not
    /// idle-waiting on the queue). Worker utilization over a window is
    /// `Δbusy-us / (workers × Δwall-us)`. `stats2`-only.
    /// Wire: `pool.busy-us`.
    pub pool_busy_us: Arc<Counter>,
    /// Client connections currently open (either front end).
    /// `stats2`-only. Wire: `conns.open`.
    pub conns_open: Arc<Gauge>,
    /// Mutations committed through the transactional session API (each
    /// element of a `mutate` batch, plus the legacy single-shot verbs
    /// which route through the same API). `stats2`-only.
    /// Wire: `session.mutations`.
    pub session_mutations: Arc<Counter>,
    /// `resolve` operations that reused the session's cached tree
    /// distribution (replied `warm=1`). `stats2`-only.
    /// Wire: `session.warm-solves`.
    pub session_warm_solves: Arc<Counter>,
    /// Placement moves session operations incurred (arrivals, overflow
    /// relocations, drain evacuations, resolve commits) — the fleet-wide
    /// re-pinning churn. `stats2`-only. Wire: `session.moves`.
    pub session_moves: Arc<Counter>,
    /// End-to-end solve latency (enqueue to reply), successful solves
    /// only, in microseconds. Wire: `solve.latency-us`.
    pub solve_latency: Arc<Histogram>,
    /// Time a solve job spent queued before a worker picked it up, in
    /// microseconds — the backpressure signal `stats` never exposed.
    /// Wire: `queue.wait-us`.
    pub queue_wait: Arc<Histogram>,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Fresh registry with all metrics at zero.
    pub fn new() -> Self {
        let registry = Registry::new();
        let requests = registry.counter("req.lines");
        let bad_requests = registry.counter("req.bad");
        let solve_ok = registry.counter("solve.ok");
        let solve_degraded = registry.counter("solve.degraded");
        let solve_err = registry.counter("solve.err");
        let overloaded = registry.counter("solve.overloaded");
        let incr_ops = registry.counter("incr.ops");
        let sessions_open = registry.gauge("sessions.open");
        let workers_alive = registry.gauge("pool.workers-alive");
        let worker_deaths = registry.counter("pool.worker-deaths");
        let solve_panics = registry.counter("pool.solve-panics");
        let cache_hits = registry.gauge("cache.hits");
        let cache_misses = registry.gauge("cache.misses");
        let cache_near_hits = registry.gauge("cache.near-hits");
        let cache_builds = registry.counter("cache.builds");
        let cache_coalesced = registry.counter("cache.coalesced");
        let pool_busy_us = registry.counter("pool.busy-us");
        let conns_open = registry.gauge("conns.open");
        let session_mutations = registry.counter("session.mutations");
        let session_warm_solves = registry.counter("session.warm-solves");
        let session_moves = registry.counter("session.moves");
        let solve_latency = registry.histogram("solve.latency-us");
        let queue_wait = registry.histogram("queue.wait-us");
        Self {
            registry,
            requests,
            bad_requests,
            solve_ok,
            solve_degraded,
            solve_err,
            overloaded,
            incr_ops,
            sessions_open,
            workers_alive,
            worker_deaths,
            solve_panics,
            cache_hits,
            cache_misses,
            cache_near_hits,
            cache_builds,
            cache_coalesced,
            pool_busy_us,
            conns_open,
            session_mutations,
            session_warm_solves,
            session_moves,
            solve_latency,
            queue_wait,
        }
    }

    /// Renders the deprecated `stats` reply body (the part after `ok `),
    /// byte-compatible with the pre-registry format. New consumers should
    /// prefer [`Metrics::stats2_line`].
    pub fn stats_line(&self, cache_hits: u64, cache_misses: u64) -> String {
        format!(
            "requests={} bad-requests={} solve-ok={} solve-degraded={} solve-err={} \
             overloaded={} incr-ops={} sessions-open={} workers-alive={} \
             worker-deaths={} solve-panics={} cache-hits={} cache-misses={} \
             solve-p50-us={} solve-p99-us={} solve-max-us={}",
            self.requests.get(),
            self.bad_requests.get(),
            self.solve_ok.get(),
            self.solve_degraded.get(),
            self.solve_err.get(),
            self.overloaded.get(),
            self.incr_ops.get(),
            self.sessions_open.get(),
            self.workers_alive.get(),
            self.worker_deaths.get(),
            self.solve_panics.get(),
            cache_hits,
            cache_misses,
            self.solve_latency.quantile(0.50),
            self.solve_latency.quantile(0.99),
            self.solve_latency.max(),
        )
    }

    /// Renders the versioned `stats2` reply body: `version=2` followed by
    /// every registered metric in registration order, histograms expanded
    /// to `-p50`/`-p99`/`-max`/`-count` tokens.
    pub fn stats2_line(&self, cache_hits: u64, cache_misses: u64, cache_near_hits: u64) -> String {
        self.cache_hits.set(cache_hits);
        self.cache_misses.set(cache_misses);
        self.cache_near_hits.set(cache_near_hits);
        self.registry.render(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn stats_line_reflects_counters() {
        let m = Metrics::new();
        m.requests.inc();
        m.requests.inc();
        m.solve_ok.inc();
        m.solve_latency
            .record_duration_us(Duration::from_micros(100));
        let line = m.stats_line(3, 1);
        assert!(line.contains("requests=2"), "{line}");
        assert!(line.contains("solve-ok=1"), "{line}");
        assert!(line.contains("cache-hits=3"), "{line}");
        assert!(line.contains("cache-misses=1"), "{line}");
        assert!(line.contains("workers-alive=0"), "{line}");
        assert!(line.contains("worker-deaths=0"), "{line}");
        assert!(line.contains("solve-panics=0"), "{line}");
    }

    #[test]
    fn stats_line_is_byte_compatible_with_the_legacy_layout() {
        // the deprecated reply must keep its exact token order — scrapers
        // written against the pre-registry server parse positionally
        let m = Metrics::new();
        let line = m.stats_line(0, 0);
        let keys: Vec<&str> = line
            .split_whitespace()
            .map(|kv| kv.split_once('=').unwrap().0)
            .collect();
        assert_eq!(
            keys,
            [
                "requests",
                "bad-requests",
                "solve-ok",
                "solve-degraded",
                "solve-err",
                "overloaded",
                "incr-ops",
                "sessions-open",
                "workers-alive",
                "worker-deaths",
                "solve-panics",
                "cache-hits",
                "cache-misses",
                "solve-p50-us",
                "solve-p99-us",
                "solve-max-us",
            ]
        );
    }

    #[test]
    fn stats2_line_carries_version_and_renamed_keys() {
        let m = Metrics::new();
        m.requests.inc();
        m.solve_ok.inc();
        m.solve_latency
            .record_duration_us(Duration::from_micros(100));
        m.queue_wait.record_duration_us(Duration::from_micros(7));
        m.cache_builds.inc();
        m.cache_coalesced.inc();
        m.pool_busy_us.add(250);
        m.conns_open.set(12);
        m.session_mutations.add(4);
        m.session_warm_solves.inc();
        m.session_moves.add(9);
        let line = m.stats2_line(5, 2, 3);
        assert!(line.starts_with("version=2 req.lines=1"), "{line}");
        for tok in [
            "solve.ok=1",
            "cache.hits=5",
            "cache.misses=2",
            "cache.near-hits=3",
            "cache.builds=1",
            "cache.coalesced=1",
            "pool.busy-us=250",
            "conns.open=12",
            "session.mutations=4",
            "session.warm-solves=1",
            "session.moves=9",
            "solve.latency-us-p50=128",
            "solve.latency-us-count=1",
            "queue.wait-us-p50=8",
            "queue.wait-us-count=1",
        ] {
            assert!(line.contains(tok), "missing {tok}: {line}");
        }
    }

    #[test]
    fn legacy_stats_omits_post_v1_keys() {
        // the frozen v1 reply must not grow tokens for metrics added after
        // the freeze (near tier, coalescing, utilization, connections)
        let m = Metrics::new();
        m.cache_builds.inc();
        m.cache_coalesced.inc();
        m.pool_busy_us.add(9);
        m.conns_open.set(3);
        let line = m.stats_line(0, 0);
        for tok in ["near", "coalesced", "busy", "conns"] {
            assert!(!line.contains(tok), "v1 stats must stay frozen: {line}");
        }
    }

    #[test]
    fn stats_and_stats2_agree_on_shared_values() {
        let m = Metrics::new();
        for _ in 0..3 {
            m.requests.inc();
        }
        m.solve_degraded.inc();
        m.workers_alive.set(4);
        let v1 = m.stats_line(9, 9);
        let v2 = m.stats2_line(9, 9, 0);
        assert!(v1.contains("requests=3") && v2.contains("req.lines=3"));
        assert!(v1.contains("solve-degraded=1") && v2.contains("solve.degraded=1"));
        assert!(v1.contains("workers-alive=4") && v2.contains("pool.workers-alive=4"));
    }
}
