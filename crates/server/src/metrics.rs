//! Lock-free service metrics: monotonic counters plus a latency histogram.
//!
//! Everything is plain atomics so the hot paths (worker threads, connection
//! threads) never serialise on a lock to record an event. The histogram
//! buckets latencies by `ceil(log2(µs))`, which is coarse but monotone —
//! good enough for p50/p99 at the granularity a `stats` caller needs, with
//! a fixed 64-slot footprint.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const BUCKETS: usize = 64;

/// A power-of-two latency histogram over microseconds.
#[derive(Debug)]
pub struct LatencyHistogram {
    counts: [AtomicU64; BUCKETS],
    max_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Fresh, empty histogram.
    pub fn new() -> Self {
        Self {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            max_us: AtomicU64::new(0),
        }
    }

    fn bucket(us: u64) -> usize {
        // bucket b holds us in [2^(b-1)+1, 2^b]; bucket 0 holds 0..=1 µs
        (64 - us.max(1).leading_zeros() as usize).min(BUCKETS - 1)
    }

    /// Records one observation.
    pub fn record(&self, elapsed: Duration) {
        let us = elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
        self.counts[Self::bucket(us)].fetch_add(1, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Upper bound (µs) of the bucket containing the `q`-quantile, or 0 on
    /// an empty histogram. `q` in `[0, 1]`.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let snapshot: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let total: u64 = snapshot.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &c) in snapshot.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return 1u64 << b;
            }
        }
        1u64 << (BUCKETS - 1)
    }

    /// Largest observation (µs).
    pub fn max_us(&self) -> u64 {
        self.max_us.load(Ordering::Relaxed)
    }
}

/// The server-wide metrics registry, shared by all threads.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Request lines received (parse failures included).
    pub requests: AtomicU64,
    /// Requests rejected as unparseable or semantically invalid.
    pub bad_requests: AtomicU64,
    /// Solves answered from the full pipeline within deadline.
    pub solve_ok: AtomicU64,
    /// Solves answered degraded (baseline fallback or partial distribution).
    pub solve_degraded: AtomicU64,
    /// Solves that failed outright (infeasible, disconnected, …).
    pub solve_err: AtomicU64,
    /// Solves rejected because the queue was full.
    pub overloaded: AtomicU64,
    /// `place-incremental` operations applied successfully.
    pub incr_ops: AtomicU64,
    /// Sessions currently open.
    pub sessions_open: AtomicU64,
    /// Solver-pool workers currently alive (gauge, maintained by the pool
    /// supervisor).
    pub workers_alive: AtomicU64,
    /// Worker threads that died (escaped the panic-isolation boundary) and
    /// were respawned by the supervisor.
    pub worker_deaths: AtomicU64,
    /// Solves that panicked and were caught at the isolation boundary
    /// (answered `err internal`; the worker survived).
    pub solve_panics: AtomicU64,
    /// End-to-end solve latency (enqueue to reply), successful solves only.
    pub solve_latency: LatencyHistogram,
}

impl Metrics {
    /// Fresh registry with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bumps a counter by one.
    pub fn inc(&self, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads a counter.
    pub fn get(&self, counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// Renders the `stats` reply body (the part after `ok `).
    pub fn stats_line(&self, cache_hits: u64, cache_misses: u64) -> String {
        format!(
            "requests={} bad-requests={} solve-ok={} solve-degraded={} solve-err={} \
             overloaded={} incr-ops={} sessions-open={} workers-alive={} \
             worker-deaths={} solve-panics={} cache-hits={} cache-misses={} \
             solve-p50-us={} solve-p99-us={} solve-max-us={}",
            self.get(&self.requests),
            self.get(&self.bad_requests),
            self.get(&self.solve_ok),
            self.get(&self.solve_degraded),
            self.get(&self.solve_err),
            self.get(&self.overloaded),
            self.get(&self.incr_ops),
            self.get(&self.sessions_open),
            self.get(&self.workers_alive),
            self.get(&self.worker_deaths),
            self.get(&self.solve_panics),
            cache_hits,
            cache_misses,
            self.solve_latency.quantile_us(0.50),
            self.solve_latency.quantile_us(0.99),
            self.solve_latency.max_us(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_monotone() {
        let h = LatencyHistogram::new();
        for us in [1u64, 2, 3, 700, 1_000_000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 5);
        assert!(h.quantile_us(0.0) <= h.quantile_us(0.5));
        assert!(h.quantile_us(0.5) <= h.quantile_us(1.0));
        assert_eq!(h.max_us(), 1_000_000);
        // p50 of {1,2,3,700,1e6} lands in the bucket holding 3 µs
        assert_eq!(h.quantile_us(0.5), 4);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_us(0.5), 0);
        assert_eq!(h.max_us(), 0);
    }

    #[test]
    fn stats_line_reflects_counters() {
        let m = Metrics::new();
        m.inc(&m.requests);
        m.inc(&m.requests);
        m.inc(&m.solve_ok);
        m.solve_latency.record(Duration::from_micros(100));
        let line = m.stats_line(3, 1);
        assert!(line.contains("requests=2"), "{line}");
        assert!(line.contains("solve-ok=1"), "{line}");
        assert!(line.contains("cache-hits=3"), "{line}");
        assert!(line.contains("cache-misses=1"), "{line}");
        assert!(line.contains("workers-alive=0"), "{line}");
        assert!(line.contains("worker-deaths=0"), "{line}");
        assert!(line.contains("solve-panics=0"), "{line}");
    }
}
