//! LRU cache for Räcke tree distributions.
//!
//! The decomposition-tree distribution is the expensive half of a solve and
//! depends only on the communication topology and construction knobs
//! (Andersen–Feige; see `hgp_core::fingerprint`), not on the machine or the
//! rounding — so a long-running server reuses it across requests. Entries
//! are `Arc`-shared: a hit costs a hash lookup and a refcount bump, and an
//! entry being evicted while a worker still solves on it is harmless.

use hgp_decomp::Distribution;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct Entry {
    dist: Arc<Distribution>,
    /// Logical timestamp of last access (monotone per cache).
    stamp: u64,
}

/// A bounded LRU map from distribution fingerprints to shared
/// distributions.
pub struct DecompCache {
    entries: Mutex<HashMap<u64, Entry>>,
    capacity: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl DecompCache {
    /// Cache holding at most `capacity` distributions (`0` disables
    /// caching: every lookup misses and nothing is stored).
    pub fn new(capacity: usize) -> Self {
        Self {
            entries: Mutex::new(HashMap::new()),
            capacity,
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: u64) -> Option<Arc<Distribution>> {
        let mut map = self.entries.lock();
        match map.get_mut(&key) {
            Some(e) => {
                e.stamp = self.clock.fetch_add(1, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&e.dist))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts `dist` under `key`, evicting the least-recently-used entry
    /// if the cache is full. Racing inserts of the same key are idempotent
    /// (last writer wins; both values are equivalent by construction since
    /// the key fingerprints every input of the build).
    pub fn insert(&self, key: u64, dist: Arc<Distribution>) {
        if self.capacity == 0 {
            return;
        }
        let mut map = self.entries.lock();
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        if !map.contains_key(&key) && map.len() >= self.capacity {
            if let Some(&oldest) = map.iter().min_by_key(|(_, e)| e.stamp).map(|(k, _)| k) {
                map.remove(&oldest);
            }
        }
        map.insert(key, Entry { dist, stamp });
    }

    /// Hit count since construction.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Miss count since construction.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgp_core::solver::{build_distribution, SolverOptions};
    use hgp_core::Instance;
    use hgp_graph::Graph;

    fn dist() -> Arc<Distribution> {
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]);
        let inst = Instance::uniform(g, 0.5);
        let opts = SolverOptions {
            num_trees: 2,
            ..Default::default()
        };
        Arc::new(build_distribution(&inst, &opts).unwrap())
    }

    #[test]
    fn hit_miss_accounting() {
        let c = DecompCache::new(4);
        assert!(c.get(1).is_none());
        c.insert(1, dist());
        assert!(c.get(1).is_some());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let c = DecompCache::new(2);
        let d = dist();
        c.insert(1, Arc::clone(&d));
        c.insert(2, Arc::clone(&d));
        assert!(c.get(1).is_some()); // refresh 1 → 2 is now LRU
        c.insert(3, d);
        assert_eq!(c.len(), 2);
        assert!(c.get(1).is_some());
        assert!(c.get(2).is_none(), "LRU entry should have been evicted");
        assert!(c.get(3).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let c = DecompCache::new(0);
        c.insert(1, dist());
        assert!(c.get(1).is_none());
        assert!(c.is_empty());
    }
}
