//! LRU cache for Räcke tree distributions.
//!
//! The decomposition-tree distribution is the expensive half of a solve and
//! depends only on the communication topology and construction knobs
//! (Andersen–Feige; see `hgp_core::fingerprint`), not on the machine or the
//! rounding — so a long-running server reuses it across requests. Entries
//! are `Arc`-shared: a hit costs a hash lookup and a refcount bump, and an
//! entry being evicted while a worker still solves on it is harmless.
//!
//! Recency is tracked with monotone stamps and a lazy-deletion min-heap:
//! every access pushes a fresh `(stamp, key)` pair and eviction pops until
//! the top pair matches the key's live stamp. Stale pairs are discarded in
//! passing, and the heap is rebuilt from the live map whenever it grows
//! past a constant factor of the entry count — so both `get` and `insert`
//! stay `O(log n)` amortised under the lock, where the old implementation
//! scanned all `capacity` entries on every eviction.
//!
//! Beyond exact lookups the cache keeps a *similarity tier*: a secondary
//! index from the weight-insensitive
//! [`topology_fingerprint`](hgp_core::fingerprint::topology_fingerprint)
//! to the primary keys sharing that topology. A request whose exact key
//! misses can ask [`DecompCache::get_near`] for the most recently used
//! distribution of a topologically identical graph and warm-start its MWU
//! sampling from it (`near=1` on the wire; `cache.near-hits` in `stats2`).

use hgp_decomp::Distribution;
use parking_lot::Mutex;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Rebuild the recency heap when it holds more than this many stale pairs
/// per live entry.
const COMPACT_FACTOR: usize = 8;

struct Entry {
    dist: Arc<Distribution>,
    /// Logical timestamp of last access (monotone per cache).
    stamp: u64,
    /// Weight-insensitive topology fingerprint, for the similarity tier.
    topo: u64,
}

/// Map plus recency index, guarded by one lock.
struct Inner {
    map: HashMap<u64, Entry>,
    /// Secondary index: topology fingerprint → live primary keys sharing
    /// it. Maintained eagerly (inserts append, evictions remove), so a
    /// key listed here is always live in `map`.
    topo_index: HashMap<u64, Vec<u64>>,
    /// Min-heap of `(stamp, key)`; a pair is live iff `map[key].stamp`
    /// equals its stamp (lazy deletion).
    order: BinaryHeap<Reverse<(u64, u64)>>,
    clock: u64,
}

impl Inner {
    fn touch(&mut self, key: u64) -> u64 {
        let stamp = self.clock;
        self.clock += 1;
        self.order.push(Reverse((stamp, key)));
        stamp
    }

    /// Drops stale heap pairs once they dominate, keeping heap growth
    /// bounded by the live entry count.
    fn maybe_compact(&mut self) {
        if self.order.len() > COMPACT_FACTOR * self.map.len().max(1) {
            self.order = self
                .map
                .iter()
                .map(|(&k, e)| Reverse((e.stamp, k)))
                .collect();
        }
    }

    /// Removes the least-recently-used live entry, keeping the topology
    /// index in sync.
    fn evict_one(&mut self) {
        while let Some(Reverse((stamp, key))) = self.order.pop() {
            match self.map.get(&key) {
                Some(e) if e.stamp == stamp => {
                    let topo = e.topo;
                    self.map.remove(&key);
                    self.unindex(topo, key);
                    return;
                }
                _ => continue, // stale pair: the key was touched again
            }
        }
    }

    /// Drops `key` from its topology bucket (and the bucket itself once
    /// empty) so the similarity tier never points at evicted entries.
    fn unindex(&mut self, topo: u64, key: u64) {
        if let Some(keys) = self.topo_index.get_mut(&topo) {
            keys.retain(|&k| k != key);
            if keys.is_empty() {
                self.topo_index.remove(&topo);
            }
        }
    }
}

/// A bounded LRU map from distribution fingerprints to shared
/// distributions.
pub struct DecompCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    near_hits: AtomicU64,
}

impl DecompCache {
    /// Cache holding at most `capacity` distributions (`0` disables
    /// caching: every lookup misses and nothing is stored).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                topo_index: HashMap::new(),
                order: BinaryHeap::new(),
                clock: 0,
            }),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            near_hits: AtomicU64::new(0),
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: u64) -> Option<Arc<Distribution>> {
        let mut inner = self.inner.lock();
        if inner.map.contains_key(&key) {
            let stamp = inner.touch(key);
            let e = inner.map.get_mut(&key).expect("checked contains_key");
            e.stamp = stamp;
            let dist = Arc::clone(&e.dist);
            inner.maybe_compact();
            self.hits.fetch_add(1, Ordering::Relaxed);
            Some(dist)
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            None
        }
    }

    /// Like [`DecompCache::get`] but without touching the hit/miss
    /// counters: used for internal re-checks (a single-flight leader
    /// confirming nobody published while it raced for leadership) that
    /// are not client lookups and must not skew the request-facing stats.
    pub fn peek(&self, key: u64) -> Option<Arc<Distribution>> {
        let mut inner = self.inner.lock();
        if inner.map.contains_key(&key) {
            let stamp = inner.touch(key);
            let e = inner.map.get_mut(&key).expect("checked contains_key");
            e.stamp = stamp;
            let dist = Arc::clone(&e.dist);
            inner.maybe_compact();
            Some(dist)
        } else {
            None
        }
    }

    /// Looks up the most recently used distribution for a topologically
    /// identical graph (`topo` is the weight-insensitive
    /// `topology_fingerprint`), without refreshing its exact-key recency —
    /// a near hit warm-starts a *different* request's build, it is not a
    /// reuse of this entry. Counted in [`DecompCache::near_hits`];
    /// near misses are already covered by the exact-key miss counter.
    pub fn get_near(&self, topo: u64) -> Option<Arc<Distribution>> {
        let inner = self.inner.lock();
        let best = inner
            .topo_index
            .get(&topo)?
            .iter()
            .filter_map(|k| inner.map.get(k))
            .max_by_key(|e| e.stamp)?;
        let dist = Arc::clone(&best.dist);
        drop(inner);
        self.near_hits.fetch_add(1, Ordering::Relaxed);
        Some(dist)
    }

    /// Inserts `dist` under `key`, evicting the least-recently-used entry
    /// if the cache is full. `topo` is the graph's weight-insensitive
    /// `topology_fingerprint`, feeding the [`DecompCache::get_near`]
    /// similarity tier.
    ///
    /// Racing inserts of the same key are idempotent: the incumbent entry
    /// is kept and only its recency is refreshed (both values are
    /// equivalent by construction since the key fingerprints every input
    /// of the build). Replacing it instead — the old last-writer-wins
    /// semantics — would strand the loser's pair in the lazy-deletion heap
    /// and duplicate its key in the topology bucket, so a duplicate-heavy
    /// workload could grow both past the live-entry bound.
    pub fn insert(&self, key: u64, topo: u64, dist: Arc<Distribution>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        if inner.map.contains_key(&key) {
            let stamp = inner.touch(key);
            let e = inner.map.get_mut(&key).expect("checked contains_key");
            e.stamp = stamp;
            inner.maybe_compact();
            return;
        }
        if inner.map.len() >= self.capacity {
            inner.evict_one();
        }
        let stamp = inner.touch(key);
        inner.map.insert(key, Entry { dist, stamp, topo });
        inner.topo_index.entry(topo).or_default().push(key);
        inner.maybe_compact();
    }

    /// Hit count since construction.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Miss count since construction.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Similarity-tier hits (`get_near` lookups that found a
    /// topologically identical distribution) since construction.
    pub fn near_hits(&self) -> u64 {
        self.near_hits.load(Ordering::Relaxed)
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgp_core::solver::SolverOptions;
    use hgp_core::{Instance, Solve};
    use hgp_graph::Graph;
    use hgp_hierarchy::presets;

    fn dist() -> Arc<Distribution> {
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]);
        let inst = Instance::uniform(g, 0.5);
        let h = presets::flat(4);
        let opts = SolverOptions::builder().trees(2).build();
        Arc::new(Solve::new(&inst, &h).options(opts).distribution().unwrap())
    }

    #[test]
    fn hit_miss_accounting() {
        let c = DecompCache::new(4);
        assert!(c.get(1).is_none());
        c.insert(1, 0, dist());
        assert!(c.get(1).is_some());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let c = DecompCache::new(2);
        let d = dist();
        c.insert(1, 0, Arc::clone(&d));
        c.insert(2, 0, Arc::clone(&d));
        assert!(c.get(1).is_some()); // refresh 1 → 2 is now LRU
        c.insert(3, 0, d);
        assert_eq!(c.len(), 2);
        assert!(c.get(1).is_some());
        assert!(c.get(2).is_none(), "LRU entry should have been evicted");
        assert!(c.get(3).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let c = DecompCache::new(0);
        c.insert(1, 0, dist());
        assert!(c.get(1).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn near_hits_serve_topology_twins_and_respect_eviction() {
        let c = DecompCache::new(2);
        let d = dist();
        c.insert(1, 100, Arc::clone(&d));
        assert!(c.get_near(999).is_none(), "unknown topology");
        assert_eq!(c.near_hits(), 0);
        let near = c.get_near(100).expect("topology twin cached");
        assert!(Arc::ptr_eq(&near, &d));
        assert_eq!(c.near_hits(), 1);

        // among several entries with the same topology, the most recently
        // used one is served
        let d2 = dist();
        c.insert(2, 100, Arc::clone(&d2));
        assert!(c.get(1).is_some()); // 1 now more recent than 2
        let near = c.get_near(100).unwrap();
        assert!(Arc::ptr_eq(&near, &d), "most recent twin wins");

        // eviction cleans the index: push both topo-100 entries out
        c.insert(3, 300, Arc::clone(&d));
        c.insert(4, 300, Arc::clone(&d));
        assert_eq!(c.len(), 2);
        assert!(c.get_near(100).is_none(), "evicted topology must unindex");
        assert!(c.get_near(300).is_some());
    }

    #[test]
    fn duplicate_insert_keeps_the_incumbent_and_refreshes_recency() {
        let c = DecompCache::new(2);
        let first = dist();
        let second = dist();
        c.insert(1, 7, Arc::clone(&first));
        c.insert(2, 7, Arc::clone(&second));
        // racing duplicate: the incumbent value survives...
        c.insert(1, 7, Arc::clone(&second));
        let got = c.get(1).unwrap();
        assert!(
            Arc::ptr_eq(&got, &first),
            "incumbent must win duplicate race"
        );
        // ...and key 1 was refreshed twice, so 2 is the LRU entry
        c.insert(3, 9, second);
        assert_eq!(c.len(), 2);
        assert!(c.get(2).is_none(), "2 was LRU and must be evicted");
        assert!(c.get(1).is_some() && c.get(3).is_some());
    }

    #[test]
    fn concurrent_insert_get_hammer_never_exceeds_capacity() {
        // satellite regression: 8 threads race inserts (duplicate keys
        // included) and lookups; the cache must never exceed capacity and
        // the topology index must never serve a dangling key
        const CAP: usize = 4;
        let c = Arc::new(DecompCache::new(CAP));
        let d = dist();
        std::thread::scope(|s| {
            for t in 0..8 {
                let c = Arc::clone(&c);
                let d = Arc::clone(&d);
                s.spawn(move || {
                    for i in 0..200 {
                        let key = ((t + i) % 16) as u64;
                        c.insert(key, key % 4, Arc::clone(&d));
                        assert!(c.len() <= CAP, "cache grew past capacity");
                        let _ = c.get((i % 16) as u64);
                        let _ = c.get_near((i % 4) as u64);
                    }
                });
            }
        });
        assert!(c.len() <= CAP);
        assert!(!c.is_empty());
    }

    #[test]
    fn eviction_order_survives_interleaved_get_insert() {
        // Exercise the lazy-deletion heap hard: repeated touches create
        // many stale pairs; eviction must still pick the true LRU entry.
        let c = DecompCache::new(3);
        let d = dist();
        c.insert(1, 0, Arc::clone(&d));
        c.insert(2, 0, Arc::clone(&d));
        c.insert(3, 0, Arc::clone(&d));
        // recency now 1 < 2 < 3; touch 1 and 2 many times, interleaved
        for _ in 0..50 {
            assert!(c.get(1).is_some());
            assert!(c.get(2).is_some());
        }
        // 3 is the LRU despite being inserted last
        c.insert(4, 0, Arc::clone(&d));
        assert_eq!(c.len(), 3);
        assert!(c.get(3).is_none(), "3 was LRU and must be evicted");
        assert!(c.get(1).is_some() && c.get(2).is_some() && c.get(4).is_some());

        // re-inserting an existing key refreshes it rather than evicting
        c.insert(1, 0, Arc::clone(&d));
        assert_eq!(c.len(), 3);
        // now 2 is LRU (last touched before 4 and the re-insert of 1)...
        assert!(c.get(4).is_some());
        assert!(c.get(1).is_some());
        c.insert(5, 0, Arc::clone(&d));
        assert!(c.get(2).is_none(), "2 was LRU and must be evicted");

        // a long churn keeps the cache exactly at capacity with the
        // expected survivors
        for k in 10..200 {
            c.insert(k, 0, Arc::clone(&d));
            assert!(c.len() <= 3);
        }
        assert!(c.get(199).is_some());
        assert!(c.get(198).is_some());
        assert!(c.get(197).is_some());
        assert!(c.get(10).is_none());
    }
}
