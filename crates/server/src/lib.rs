//! `hgp-server`: a long-running concurrent placement service.
//!
//! The paper's pipeline is an offline algorithm; the deployments that
//! motivate it (stream-processing operators on NUMA boxes and clusters,
//! §1 of the paper) need placement *as a service*: many callers, repeat
//! topologies, latency budgets, and task churn between full solves. This
//! crate wraps the `hgp-core` solver in exactly that shape:
//!
//! * [`protocol`] — a newline-delimited text protocol over TCP
//!   (`solve` with an opt-in `trace=1` profile, `place-incremental`,
//!   `stats`, the versioned `stats2`, `shutdown`);
//! * [`pool`] — a bounded solver pool: admission control via
//!   `overloaded`, per-request deadlines with graceful degradation to the
//!   `hgp-baselines` k-way + refine path (replies tagged `degraded=1`);
//! * [`cache`] — an LRU over Räcke tree distributions keyed by the
//!   structural fingerprints in `hgp_core::fingerprint`, so repeat
//!   topologies skip the expensive embedding;
//! * [`session`] — server-held elastic [`hgp_core::Session`]s for task
//!   churn (typed `mutate` batches, bounded-churn `resolve`), with
//!   wire-safe validation;
//! * [`metrics`] — typed `hgp-obs` counters, gauges and histograms in a
//!   registry behind `stats` (legacy names) and `stats2` (versioned);
//! * [`flight`] — single-flight coalescing: concurrent solves sharing a
//!   distribution fingerprint join one in-flight build (leader builds,
//!   followers park and reuse, replies tagged `cache=shared`);
//! * [`netpoll`] — a vendored-style shim over POSIX `poll(2)`/`pipe(2)`
//!   (the workspace is crates.io-free) powering the event loop;
//! * [`server`] — the std-only TCP front ends tying it together: an
//!   event-driven readiness loop multiplexing thousands of non-blocking
//!   connections on one thread (default on unix), with the legacy
//!   thread-per-connection mode behind `ServerConfig::legacy_threads`.
//!
//! Everything is deterministic given request seeds: two identical `solve`
//! lines return identical costs, whether the distribution was built
//! fresh, served from cache, or shared from a coalesced in-flight build.

#![warn(missing_docs)]

pub mod cache;
#[cfg(unix)]
mod event;
pub mod flight;
pub mod metrics;
pub mod netpoll;
pub mod pool;
pub mod protocol;
pub mod server;
pub mod session;

pub use cache::DecompCache;
pub use flight::{FlightError, FlightGroup, FollowerOutcome, Ticket};
pub use metrics::Metrics;
pub use pool::{channel_reply, ReplySink, SolveJob, SolverPool};
pub use protocol::{ErrCode, GraphSpec, IncrOp, Request, SolveSpec, WireError};
pub use server::{Server, ServerConfig, ServerConfigBuilder};
pub use session::SessionTable;
