//! `hgp-server`: a long-running concurrent placement service.
//!
//! The paper's pipeline is an offline algorithm; the deployments that
//! motivate it (stream-processing operators on NUMA boxes and clusters,
//! §1 of the paper) need placement *as a service*: many callers, repeat
//! topologies, latency budgets, and task churn between full solves. This
//! crate wraps the `hgp-core` solver in exactly that shape:
//!
//! * [`protocol`] — a newline-delimited text protocol over TCP
//!   (`solve` with an opt-in `trace=1` profile, `place-incremental`,
//!   `stats`, the versioned `stats2`, `shutdown`);
//! * [`pool`] — a bounded solver pool: admission control via
//!   `overloaded`, per-request deadlines with graceful degradation to the
//!   `hgp-baselines` k-way + refine path (replies tagged `degraded=1`);
//! * [`cache`] — an LRU over Räcke tree distributions keyed by the
//!   structural fingerprints in `hgp_core::fingerprint`, so repeat
//!   topologies skip the expensive embedding;
//! * [`session`] — server-held [`hgp_core::incremental::DynamicPlacer`]
//!   sessions for task churn, with wire-safe validation;
//! * [`metrics`] — typed `hgp-obs` counters, gauges and histograms in a
//!   registry behind `stats` (legacy names) and `stats2` (versioned);
//! * [`server`] — the std-only TCP front end tying it together.
//!
//! Everything is deterministic given request seeds: two identical `solve`
//! lines return identical costs, whether or not the cache was hit.

#![warn(missing_docs)]

pub mod cache;
pub mod metrics;
pub mod pool;
pub mod protocol;
pub mod server;
pub mod session;

pub use cache::DecompCache;
pub use metrics::Metrics;
pub use pool::{SolveJob, SolverPool};
pub use protocol::{ErrCode, GraphSpec, IncrOp, Request, SolveSpec, WireError};
pub use server::{Server, ServerConfig, ServerConfigBuilder};
pub use session::SessionTable;
