//! Session table for `place-incremental`: server-held [`DynamicPlacer`]s.
//!
//! Each session owns one placer plus the bookkeeping needed to answer a
//! hostile wire safely: `DynamicPlacer`'s mutators *panic* on invalid
//! arguments (removed tasks, dead neighbours), which is the right contract
//! for an in-process library but not for a network service — so every
//! operation is validated against the session's live-task set first and
//! invalid requests turn into `err` replies, never a worker panic.

use crate::protocol::{ErrCode, IncrOp, WireError};
use hgp_core::incremental::DynamicPlacer;
use hgp_hierarchy::Hierarchy;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};

struct SessionEntry {
    placer: DynamicPlacer,
    /// Task ids that are currently live (added and not removed).
    live: HashSet<usize>,
}

/// All open sessions, keyed by server-assigned id.
pub struct SessionTable {
    sessions: Mutex<HashMap<u64, SessionEntry>>,
    next_id: AtomicU64,
    max_sessions: usize,
}

impl SessionTable {
    /// An empty table admitting at most `max_sessions` concurrent sessions.
    pub fn new(max_sessions: usize) -> Self {
        Self {
            sessions: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            max_sessions: max_sessions.max(1),
        }
    }

    /// Sessions currently open.
    pub fn open_count(&self) -> usize {
        self.sessions.lock().len()
    }

    /// Applies one operation and formats the `ok …` reply body.
    pub fn apply(&self, op: IncrOp) -> Result<String, WireError> {
        match op {
            IncrOp::New { machine } => self.open(machine),
            IncrOp::Add {
                session,
                demand,
                nbrs,
            } => self.with_session(session, |e| {
                for &(t, _) in &nbrs {
                    if !e.live.contains(&t) {
                        return Err(WireError::new(
                            ErrCode::NotFound,
                            format!("neighbour task {t} is not live in this session"),
                        ));
                    }
                }
                let id = e.placer.add_task(demand, &nbrs);
                e.live.insert(id);
                Ok(format!(
                    "task={} leaf={} cost={} max-load={}",
                    id,
                    e.placer.leaf_of(id),
                    e.placer.cost(),
                    e.placer.max_load()
                ))
            }),
            IncrOp::Remove { session, task } => self.with_session(session, |e| {
                if !e.live.remove(&task) {
                    return Err(WireError::new(
                        ErrCode::NotFound,
                        format!("task {task} is not live in this session"),
                    ));
                }
                e.placer.remove_task(task);
                Ok(format!(
                    "task={} active={} cost={}",
                    task,
                    e.placer.num_active(),
                    e.placer.cost()
                ))
            }),
            IncrOp::Resize {
                session,
                task,
                demand,
            } => self.with_session(session, |e| {
                if !e.live.contains(&task) {
                    return Err(WireError::new(
                        ErrCode::NotFound,
                        format!("task {task} is not live in this session"),
                    ));
                }
                e.placer.update_demand(task, demand);
                Ok(format!(
                    "task={} leaf={} max-load={} churn={}",
                    task,
                    e.placer.leaf_of(task),
                    e.placer.max_load(),
                    e.placer.churn()
                ))
            }),
            IncrOp::Rebalance { session, max_moves } => self.with_session(session, |e| {
                let before = e.placer.cost();
                let (moves, gained) = e.placer.rebalance(max_moves);
                Ok(format!(
                    "moves={} gained={} cost={} was={}",
                    moves,
                    gained,
                    e.placer.cost(),
                    before
                ))
            }),
            IncrOp::Info { session } => self.with_session(session, |e| {
                Ok(format!(
                    "active={} cost={} max-load={} churn={}",
                    e.placer.num_active(),
                    e.placer.cost(),
                    e.placer.max_load(),
                    e.placer.churn()
                ))
            }),
            IncrOp::End { session } => match self.sessions.lock().remove(&session) {
                Some(e) => Ok(format!(
                    "session={} active={} churn={}",
                    session,
                    e.placer.num_active(),
                    e.placer.churn()
                )),
                None => Err(WireError::new(
                    ErrCode::NotFound,
                    format!("no session {session}"),
                )),
            },
        }
    }

    fn open(&self, machine: Hierarchy) -> Result<String, WireError> {
        let mut map = self.sessions.lock();
        if map.len() >= self.max_sessions {
            return Err(WireError::new(
                ErrCode::Overloaded,
                format!("session limit {} reached", self.max_sessions),
            ));
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let leaves = machine.num_leaves();
        map.insert(
            id,
            SessionEntry {
                placer: DynamicPlacer::new(machine),
                live: HashSet::new(),
            },
        );
        Ok(format!("session={id} leaves={leaves}"))
    }

    fn with_session<F>(&self, id: u64, f: F) -> Result<String, WireError>
    where
        F: FnOnce(&mut SessionEntry) -> Result<String, WireError>,
    {
        let mut map = self.sessions.lock();
        let entry = map
            .get_mut(&id)
            .ok_or_else(|| WireError::new(ErrCode::NotFound, format!("no session {id}")))?;
        f(entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgp_hierarchy::presets;

    fn open(t: &SessionTable) -> u64 {
        let reply = t
            .apply(IncrOp::New {
                machine: presets::multicore(2, 2, 4.0, 1.0),
            })
            .unwrap();
        reply
            .split_whitespace()
            .find_map(|kv| kv.strip_prefix("session="))
            .unwrap()
            .parse()
            .unwrap()
    }

    #[test]
    fn session_lifecycle() {
        let t = SessionTable::new(8);
        let s = open(&t);
        assert_eq!(t.open_count(), 1);
        let r = t
            .apply(IncrOp::Add {
                session: s,
                demand: 0.5,
                nbrs: vec![],
            })
            .unwrap();
        assert!(r.contains("task=0"), "{r}");
        let r = t
            .apply(IncrOp::Add {
                session: s,
                demand: 0.5,
                nbrs: vec![(0, 3.0)],
            })
            .unwrap();
        assert!(r.contains("task=1"), "{r}");
        t.apply(IncrOp::Remove {
            session: s,
            task: 0,
        })
        .unwrap();
        t.apply(IncrOp::End { session: s }).unwrap();
        assert_eq!(t.open_count(), 0);
    }

    #[test]
    fn invalid_operations_become_errors_not_panics() {
        let t = SessionTable::new(8);
        let s = open(&t);
        t.apply(IncrOp::Add {
            session: s,
            demand: 0.5,
            nbrs: vec![],
        })
        .unwrap();
        t.apply(IncrOp::Remove {
            session: s,
            task: 0,
        })
        .unwrap();
        // edges to a removed task
        let e = t
            .apply(IncrOp::Add {
                session: s,
                demand: 0.5,
                nbrs: vec![(0, 1.0)],
            })
            .unwrap_err();
        assert_eq!(e.code, ErrCode::NotFound);
        // double remove
        let e = t
            .apply(IncrOp::Remove {
                session: s,
                task: 0,
            })
            .unwrap_err();
        assert_eq!(e.code, ErrCode::NotFound);
        // resize of a task that never existed
        let e = t
            .apply(IncrOp::Resize {
                session: s,
                task: 99,
                demand: 0.5,
            })
            .unwrap_err();
        assert_eq!(e.code, ErrCode::NotFound);
        // unknown session
        let e = t.apply(IncrOp::Info { session: 999 }).unwrap_err();
        assert_eq!(e.code, ErrCode::NotFound);
    }

    #[test]
    fn session_limit_is_enforced() {
        let t = SessionTable::new(1);
        let _s = open(&t);
        let e = t
            .apply(IncrOp::New {
                machine: presets::multicore(2, 2, 4.0, 1.0),
            })
            .unwrap_err();
        assert_eq!(e.code, ErrCode::Overloaded);
    }
}
