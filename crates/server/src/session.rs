//! Session table for `place-incremental`: server-held elastic
//! [`Session`]s.
//!
//! Each wire session owns one [`hgp_core::Session`] — the transactional
//! mutation + warm re-solve layer. The core API validates whole batches
//! up front and returns typed [`MutationError`]s, so a hostile wire can
//! never drive the placer into a panic: invalid requests turn into `err`
//! replies with the right code (`not-found` for dead task ids,
//! `machine-too-large` for runaway growth, `bad-request` otherwise).
//!
//! The legacy single-shot ops (`add`/`remove`/`resize`) route through the
//! same [`Session::apply`] as one-mutation batches, so the deprecated
//! wire verbs and the transactional `mutate` verb cannot drift: both run
//! the exact same state machine underneath.

use crate::protocol::{ErrCode, IncrOp, WireError};
use hgp_core::{ChurnBudget, Mutation, MutationError, ReplaceOptions, Session};
use hgp_hierarchy::Hierarchy;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// What applying one wire operation did — the reply body plus the facts
/// the metrics layer records (kept out of the reply path so both front
/// ends update counters identically through one integration point).
#[derive(Debug)]
pub struct ApplyOutcome {
    /// The `ok …` reply body.
    pub reply: String,
    /// Mutations committed through the transactional API by this op.
    pub mutations: u64,
    /// Placement moves this op incurred (arrivals, relocations,
    /// evacuations, resolve commits).
    pub moves: u64,
    /// `true` iff this op was a resolve that reused the cached
    /// distribution.
    pub warm_solve: bool,
}

impl ApplyOutcome {
    fn reply_only(reply: String) -> Self {
        Self {
            reply,
            mutations: 0,
            moves: 0,
            warm_solve: false,
        }
    }
}

/// Maps a typed core rejection to its wire class: dead ids are
/// `not-found`, runaway growth is `machine-too-large`, everything else —
/// malformed demands, weights, multipliers, degenerate drains — is a
/// plain `bad-request`.
fn wire_err(e: MutationError) -> WireError {
    let code = match &e {
        MutationError::UnknownTask { .. }
        | MutationError::UnknownNeighbour { .. }
        | MutationError::UnknownLeaf { .. }
        | MutationError::UnknownLevel { .. } => ErrCode::NotFound,
        MutationError::MachineTooLarge { .. } => ErrCode::MachineTooLarge,
        _ => ErrCode::BadRequest,
    };
    WireError::new(code, e.to_string())
}

/// All open sessions, keyed by server-assigned id.
pub struct SessionTable {
    sessions: Mutex<HashMap<u64, Session>>,
    next_id: AtomicU64,
    max_sessions: usize,
}

impl SessionTable {
    /// An empty table admitting at most `max_sessions` concurrent sessions.
    pub fn new(max_sessions: usize) -> Self {
        Self {
            sessions: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            max_sessions: max_sessions.max(1),
        }
    }

    /// Sessions currently open.
    pub fn open_count(&self) -> usize {
        self.sessions.lock().len()
    }

    /// Applies one operation; the outcome carries the `ok …` reply body
    /// plus the session-metric facts.
    pub fn apply(&self, op: IncrOp) -> Result<ApplyOutcome, WireError> {
        match op {
            IncrOp::New { machine } => self.open(machine),
            IncrOp::Add {
                session,
                demand,
                nbrs,
            } => self.with_session(session, |s| {
                let delta = s
                    .apply(&[Mutation::AddTask { demand, nbrs }])
                    .map_err(wire_err)?;
                let id = delta.added[0];
                Ok(ApplyOutcome {
                    reply: format!(
                        "task={} leaf={} cost={} max-load={}",
                        id,
                        s.leaf_of(id).expect("just added"),
                        delta.cost,
                        delta.max_load
                    ),
                    mutations: 1,
                    moves: delta.moves,
                    warm_solve: false,
                })
            }),
            IncrOp::Remove { session, task } => self.with_session(session, |s| {
                let delta = s
                    .apply(&[Mutation::RemoveTask { task }])
                    .map_err(wire_err)?;
                Ok(ApplyOutcome {
                    reply: format!(
                        "task={} active={} cost={}",
                        task,
                        s.num_active(),
                        delta.cost
                    ),
                    mutations: 1,
                    moves: delta.moves,
                    warm_solve: false,
                })
            }),
            IncrOp::Resize {
                session,
                task,
                demand,
            } => self.with_session(session, |s| {
                let delta = s
                    .apply(&[Mutation::UpdateDemand { task, demand }])
                    .map_err(wire_err)?;
                Ok(ApplyOutcome {
                    reply: format!(
                        "task={} leaf={} max-load={} churn={}",
                        task,
                        s.leaf_of(task).expect("validated live"),
                        delta.max_load,
                        s.churn()
                    ),
                    mutations: 1,
                    moves: delta.moves,
                    warm_solve: false,
                })
            }),
            IncrOp::Rebalance { session, max_moves } => self.with_session(session, |s| {
                let before = s.cost();
                let (moves, gained) = s.rebalance(max_moves);
                Ok(ApplyOutcome {
                    reply: format!(
                        "moves={} gained={} cost={} was={}",
                        moves,
                        gained,
                        s.cost(),
                        before
                    ),
                    mutations: 0,
                    moves: moves as u64,
                    warm_solve: false,
                })
            }),
            IncrOp::Mutate { session, ops } => self.with_session(session, |s| {
                let delta = s.apply(&ops).map_err(wire_err)?;
                let added = if delta.added.is_empty() {
                    "-".to_string()
                } else {
                    delta
                        .added
                        .iter()
                        .map(|id| id.to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                };
                Ok(ApplyOutcome {
                    reply: format!(
                        "applied={} added={} moves={} cost={} max-load={} leaves={}",
                        delta.applied, added, delta.moves, delta.cost, delta.max_load, delta.leaves
                    ),
                    mutations: delta.applied as u64,
                    moves: delta.moves,
                    warm_solve: false,
                })
            }),
            IncrOp::Resolve {
                session,
                budget,
                ratio,
                cold,
            } => self.with_session(session, |s| {
                let mut b = ChurnBudget::default();
                if let Some(m) = budget {
                    b.max_moves = m;
                }
                if let Some(r) = ratio {
                    b.max_cost_ratio = r;
                }
                let opts = ReplaceOptions::builder().budget(b).cold(cold).build();
                let rep = s.resolve(&opts);
                Ok(ApplyOutcome {
                    reply: format!(
                        "cost={} moves={} churn={} warm={} max-load={} active={}",
                        rep.cost, rep.moves, rep.churn, rep.warm as u8, rep.max_load, rep.active
                    ),
                    mutations: 0,
                    moves: rep.moves as u64,
                    warm_solve: rep.warm,
                })
            }),
            IncrOp::Info { session } => self.with_session(session, |s| {
                Ok(ApplyOutcome::reply_only(format!(
                    "active={} cost={} max-load={} churn={}",
                    s.num_active(),
                    s.cost(),
                    s.max_load(),
                    s.churn()
                )))
            }),
            IncrOp::End { session } => match self.sessions.lock().remove(&session) {
                Some(s) => Ok(ApplyOutcome::reply_only(format!(
                    "session={} active={} churn={}",
                    session,
                    s.num_active(),
                    s.churn()
                ))),
                None => Err(WireError::new(
                    ErrCode::NotFound,
                    format!("no session {session}"),
                )),
            },
        }
    }

    fn open(&self, machine: Hierarchy) -> Result<ApplyOutcome, WireError> {
        let mut map = self.sessions.lock();
        if map.len() >= self.max_sessions {
            return Err(WireError::new(
                ErrCode::Overloaded,
                format!("session limit {} reached", self.max_sessions),
            ));
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let leaves = machine.num_leaves();
        map.insert(id, Session::new(machine));
        Ok(ApplyOutcome::reply_only(format!(
            "session={id} leaves={leaves}"
        )))
    }

    fn with_session<F>(&self, id: u64, f: F) -> Result<ApplyOutcome, WireError>
    where
        F: FnOnce(&mut Session) -> Result<ApplyOutcome, WireError>,
    {
        let mut map = self.sessions.lock();
        let entry = map
            .get_mut(&id)
            .ok_or_else(|| WireError::new(ErrCode::NotFound, format!("no session {id}")))?;
        f(entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgp_hierarchy::presets;

    fn open(t: &SessionTable) -> u64 {
        let out = t
            .apply(IncrOp::New {
                machine: presets::multicore(2, 2, 4.0, 1.0),
            })
            .unwrap();
        out.reply
            .split_whitespace()
            .find_map(|kv| kv.strip_prefix("session="))
            .unwrap()
            .parse()
            .unwrap()
    }

    #[test]
    fn session_lifecycle() {
        let t = SessionTable::new(8);
        let s = open(&t);
        assert_eq!(t.open_count(), 1);
        let r = t
            .apply(IncrOp::Add {
                session: s,
                demand: 0.5,
                nbrs: vec![],
            })
            .unwrap();
        assert!(r.reply.contains("task=0"), "{}", r.reply);
        assert_eq!(r.mutations, 1);
        let r = t
            .apply(IncrOp::Add {
                session: s,
                demand: 0.5,
                nbrs: vec![(0, 3.0)],
            })
            .unwrap();
        assert!(r.reply.contains("task=1"), "{}", r.reply);
        t.apply(IncrOp::Remove {
            session: s,
            task: 0,
        })
        .unwrap();
        t.apply(IncrOp::End { session: s }).unwrap();
        assert_eq!(t.open_count(), 0);
    }

    #[test]
    fn invalid_operations_become_errors_not_panics() {
        let t = SessionTable::new(8);
        let s = open(&t);
        t.apply(IncrOp::Add {
            session: s,
            demand: 0.5,
            nbrs: vec![],
        })
        .unwrap();
        t.apply(IncrOp::Remove {
            session: s,
            task: 0,
        })
        .unwrap();
        // edges to a removed task
        let e = t
            .apply(IncrOp::Add {
                session: s,
                demand: 0.5,
                nbrs: vec![(0, 1.0)],
            })
            .unwrap_err();
        assert_eq!(e.code, ErrCode::NotFound);
        // double remove
        let e = t
            .apply(IncrOp::Remove {
                session: s,
                task: 0,
            })
            .unwrap_err();
        assert_eq!(e.code, ErrCode::NotFound);
        // resize of a task that never existed
        let e = t
            .apply(IncrOp::Resize {
                session: s,
                task: 99,
                demand: 0.5,
            })
            .unwrap_err();
        assert_eq!(e.code, ErrCode::NotFound);
        // unknown session
        let e = t.apply(IncrOp::Info { session: 999 }).unwrap_err();
        assert_eq!(e.code, ErrCode::NotFound);
    }

    #[test]
    fn session_limit_is_enforced() {
        let t = SessionTable::new(1);
        let _s = open(&t);
        let e = t
            .apply(IncrOp::New {
                machine: presets::multicore(2, 2, 4.0, 1.0),
            })
            .unwrap_err();
        assert_eq!(e.code, ErrCode::Overloaded);
    }

    #[test]
    fn mutate_batch_is_atomic_on_the_wire_path() {
        let t = SessionTable::new(8);
        let s = open(&t);
        let r = t
            .apply(IncrOp::Mutate {
                session: s,
                ops: vec![
                    Mutation::AddTask {
                        demand: 0.4,
                        nbrs: vec![],
                    },
                    Mutation::AddTask {
                        demand: 0.4,
                        nbrs: vec![(0, 2.0)],
                    },
                ],
            })
            .unwrap();
        assert!(r.reply.contains("applied=2"), "{}", r.reply);
        assert!(r.reply.contains("added=0,1"), "{}", r.reply);
        assert_eq!(r.mutations, 2);
        // a batch with one bad op applies nothing
        let e = t
            .apply(IncrOp::Mutate {
                session: s,
                ops: vec![
                    Mutation::AddTask {
                        demand: 0.4,
                        nbrs: vec![],
                    },
                    Mutation::RemoveTask { task: 77 },
                ],
            })
            .unwrap_err();
        assert_eq!(e.code, ErrCode::NotFound);
        let info = t.apply(IncrOp::Info { session: s }).unwrap();
        assert!(info.reply.contains("active=2"), "{}", info.reply);
        // runaway growth maps to machine-too-large
        let e = t
            .apply(IncrOp::Mutate {
                session: s,
                ops: vec![Mutation::AddLeaves { groups: usize::MAX }],
            })
            .unwrap_err();
        assert_eq!(e.code, ErrCode::MachineTooLarge);
    }

    #[test]
    fn resolve_reports_moves_churn_and_warmth() {
        let t = SessionTable::new(8);
        let s = open(&t);
        t.apply(IncrOp::Mutate {
            session: s,
            ops: vec![
                Mutation::AddTask {
                    demand: 0.4,
                    nbrs: vec![],
                },
                Mutation::AddTask {
                    demand: 0.4,
                    nbrs: vec![(0, 1.0)],
                },
                Mutation::AddTask {
                    demand: 0.4,
                    nbrs: vec![(1, 1.0)],
                },
                Mutation::AddTask {
                    demand: 0.4,
                    nbrs: vec![(2, 1.0)],
                },
            ],
        })
        .unwrap();
        let cold = t
            .apply(IncrOp::Resolve {
                session: s,
                budget: None,
                ratio: None,
                cold: false,
            })
            .unwrap();
        assert!(cold.reply.contains("warm=0"), "{}", cold.reply);
        assert!(!cold.warm_solve);
        // a demand edit keeps the cache warm
        t.apply(IncrOp::Resize {
            session: s,
            task: 0,
            demand: 0.5,
        })
        .unwrap();
        let warm = t
            .apply(IncrOp::Resolve {
                session: s,
                budget: Some(2),
                ratio: None,
                cold: false,
            })
            .unwrap();
        assert!(warm.reply.contains("warm=1"), "{}", warm.reply);
        assert!(warm.warm_solve);
        assert!(warm.moves <= 2, "budget exceeded: {}", warm.moves);
    }
}
