//! Argument parsing and command implementations for the `hgp` binary
//! (kept in a library so they are unit-testable).

#![warn(missing_docs)]

use hgp_baselines::refine::{refine, RefineOpts};
use hgp_core::solver::{solve, SolverOptions};
use hgp_core::{Instance, Rounding};
use hgp_graph::io::read_metis;
use hgp_graph::{traversal, Graph};
use hgp_hierarchy::{parse_hierarchy, Hierarchy};
use std::io::Write;

/// Usage text.
pub const USAGE: &str = "\
usage:
  hgp partition --graph FILE.metis --machine SHAPE[:CMS] [options]
  hgp info --graph FILE.metis

options for `partition`:
  --demands FILE   one demand per line, (0,1]; default 0.8*k/n each
  --units N        rounding grid units per leaf (default 8)
  --trees P        decomposition trees in the distribution (default 8)
  --seed S         RNG seed (default 1)
  --refine         polish the result with hierarchy-aware local search

machine SHAPE examples: 16 | 2x8 | 4x8x2:8,2,1,0";

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Cli {
    /// `hgp partition …`
    Partition {
        /// METIS graph path.
        graph: String,
        /// Machine descriptor.
        machine: String,
        /// Optional demand file.
        demands: Option<String>,
        /// Rounding units.
        units: u32,
        /// Distribution size.
        trees: usize,
        /// Seed.
        seed: u64,
        /// Post-refinement toggle.
        refine: bool,
    },
    /// `hgp info …`
    Info {
        /// METIS graph path.
        graph: String,
    },
}

impl Cli {
    /// Parses raw arguments.
    pub fn parse(args: &[String]) -> Result<Cli, String> {
        let mut it = args.iter();
        let cmd = it.next().ok_or("missing command")?;
        let mut graph = None;
        let mut machine = None;
        let mut demands = None;
        let mut units = 8u32;
        let mut trees = 8usize;
        let mut seed = 1u64;
        let mut do_refine = false;
        while let Some(flag) = it.next() {
            let mut value = |name: &str| -> Result<String, String> {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} needs a value"))
            };
            match flag.as_str() {
                "--graph" => graph = Some(value("--graph")?),
                "--machine" => machine = Some(value("--machine")?),
                "--demands" => demands = Some(value("--demands")?),
                "--units" => {
                    units = value("--units")?
                        .parse()
                        .map_err(|_| "bad --units".to_string())?
                }
                "--trees" => {
                    trees = value("--trees")?
                        .parse()
                        .map_err(|_| "bad --trees".to_string())?
                }
                "--seed" => {
                    seed = value("--seed")?
                        .parse()
                        .map_err(|_| "bad --seed".to_string())?
                }
                "--refine" => do_refine = true,
                other => return Err(format!("unknown flag {other}")),
            }
        }
        let graph = graph.ok_or("--graph is required")?;
        match cmd.as_str() {
            "partition" => Ok(Cli::Partition {
                graph,
                machine: machine.ok_or("--machine is required")?,
                demands,
                units: units.max(1),
                trees: trees.max(1),
                seed,
                refine: do_refine,
            }),
            "info" => Ok(Cli::Info { graph }),
            other => Err(format!("unknown command {other}")),
        }
    }
}

fn load_graph(path: &str) -> Result<Graph, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    read_metis(&text).map_err(|e| format!("{path}: {e}"))
}

fn load_demands(path: &str, n: usize) -> Result<Vec<f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let d: Vec<f64> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| l.parse::<f64>().map_err(|_| format!("bad demand {l:?}")))
        .collect::<Result<_, _>>()?;
    if d.len() != n {
        return Err(format!("expected {n} demands, found {}", d.len()));
    }
    Ok(d)
}

/// Executes a parsed command, writing the machine-readable result to `out`.
pub fn run(cli: &Cli, out: &mut impl Write) -> Result<(), String> {
    match cli {
        Cli::Info { graph } => {
            let g = load_graph(graph)?;
            let degrees: Vec<usize> = g.nodes().map(|v| g.degree(v)).collect();
            writeln!(out, "nodes      {}", g.num_nodes()).unwrap();
            writeln!(out, "edges      {}", g.num_edges()).unwrap();
            writeln!(out, "weight     {}", g.total_weight()).unwrap();
            writeln!(out, "connected  {}", traversal::is_connected(&g)).unwrap();
            writeln!(
                out,
                "degree     min {} max {} avg {:.2}",
                degrees.iter().min().unwrap_or(&0),
                degrees.iter().max().unwrap_or(&0),
                if degrees.is_empty() {
                    0.0
                } else {
                    degrees.iter().sum::<usize>() as f64 / degrees.len() as f64
                }
            )
            .unwrap();
            Ok(())
        }
        Cli::Partition {
            graph,
            machine,
            demands,
            units,
            trees,
            seed,
            refine: do_refine,
        } => {
            let g = load_graph(graph)?;
            let h: Hierarchy = parse_hierarchy(machine).map_err(|e| e.to_string())?;
            let n = g.num_nodes();
            let d = match demands {
                Some(path) => load_demands(path, n)?,
                None => vec![(0.8 * h.num_leaves() as f64 / n as f64).min(1.0); n],
            };
            let inst = Instance::new(g, d);
            let opts = SolverOptions {
                num_trees: *trees,
                rounding: Rounding::with_units(*units),
                seed: *seed,
                ..Default::default()
            };
            let rep = solve(&inst, &h, &opts).map_err(|e| e.to_string())?;
            let mut assignment = rep.assignment.clone();
            if *do_refine {
                let cap = rep.violation.worst_factor().max(1.0);
                refine(
                    &mut assignment,
                    &inst,
                    &h,
                    &RefineOpts {
                        capacity_factor: cap,
                        ..Default::default()
                    },
                );
            }
            let cost = assignment.cost(&inst, &h);
            let violation = assignment.violation_report(&inst, &h).worst_factor();
            eprintln!(
                "cost {cost:.4}  violation {violation:.3}  (bound {:.2})",
                (1.0 + n as f64 / *units as f64).min(2.0) * (1.0 + h.height() as f64)
            );
            writeln!(out, "# task ancestors(level 1..h)").unwrap();
            for t in 0..n {
                let leaf = assignment.leaf(t);
                write!(out, "{t}").unwrap();
                for j in 1..=h.height() {
                    write!(out, " {}", h.ancestor_at_level(leaf, j)).unwrap();
                }
                writeln!(out).unwrap();
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_partition_flags() {
        let cli = Cli::parse(&argv(
            "partition --graph g.metis --machine 2x4:4,1,0 --units 16 --trees 3 --seed 9 --refine",
        ))
        .unwrap();
        assert_eq!(
            cli,
            Cli::Partition {
                graph: "g.metis".into(),
                machine: "2x4:4,1,0".into(),
                demands: None,
                units: 16,
                trees: 3,
                seed: 9,
                refine: true,
            }
        );
    }

    #[test]
    fn parses_info() {
        let cli = Cli::parse(&argv("info --graph g.metis")).unwrap();
        assert_eq!(cli, Cli::Info { graph: "g.metis".into() });
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Cli::parse(&argv("")).is_err());
        assert!(Cli::parse(&argv("partition --machine 2x2")).is_err());
        assert!(Cli::parse(&argv("partition --graph g")).is_err());
        assert!(Cli::parse(&argv("frobnicate --graph g")).is_err());
        assert!(Cli::parse(&argv("partition --graph g --machine 2x2 --units x")).is_err());
        assert!(Cli::parse(&argv("partition --graph g --machine 2x2 --wat")).is_err());
    }

    #[test]
    fn end_to_end_partition_on_temp_file() {
        let dir = std::env::temp_dir().join("hgp-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dumbbell.metis");
        // two triangles + bridge, unweighted
        std::fs::write(&path, "6 7\n2 3\n1 3\n1 2 4\n3 5 6\n4 6\n4 5\n").unwrap();
        let cli = Cli::parse(&[
            "partition".into(),
            "--graph".into(),
            path.to_string_lossy().into_owned(),
            "--machine".into(),
            "2x3:4,1,0".into(),
            "--seed".into(),
            "3".into(),
        ])
        .unwrap();
        let mut out = Vec::new();
        run(&cli, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(lines.len(), 6);
        // each line: task socket core
        for (t, line) in lines.iter().enumerate() {
            let toks: Vec<&str> = line.split_whitespace().collect();
            assert_eq!(toks.len(), 3);
            assert_eq!(toks[0].parse::<usize>().unwrap(), t);
            assert!(toks[1].parse::<usize>().unwrap() < 2);
            assert!(toks[2].parse::<usize>().unwrap() < 6);
        }
    }

    #[test]
    fn info_reports_stats() {
        let dir = std::env::temp_dir().join("hgp-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("path.metis");
        std::fs::write(&path, "3 2\n2\n1 3\n2\n").unwrap();
        let cli = Cli::parse(&[
            "info".into(),
            "--graph".into(),
            path.to_string_lossy().into_owned(),
        ])
        .unwrap();
        let mut out = Vec::new();
        run(&cli, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("nodes      3"));
        assert!(text.contains("connected  true"));
    }
}
