//! Argument parsing and command implementations for the `hgp` binary
//! (kept in a library so they are unit-testable).

#![warn(missing_docs)]

use hgp_baselines::refine::{refine, RefineOpts};
use hgp_core::solver::SolverOptions;
use hgp_core::{DpOptions, Instance, Parallelism, Solve};
use hgp_graph::io::read_metis;
use hgp_graph::{traversal, Graph};
use hgp_hierarchy::{parse_hierarchy, Hierarchy};
use hgp_multilevel::solve_multilevel;
use hgp_server::{Server, ServerConfig};
use hgp_workloads::requests::{reply_field, request_script, substitute_session, RequestScriptOpts};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// Usage text.
pub const USAGE: &str = "\
usage:
  hgp partition --graph FILE.metis --machine SHAPE[:CMS] [options]
  hgp info --graph FILE.metis
  hgp serve [--addr HOST:PORT] [--workers N] [--queue N] [--threads N]
            [--cache-capacity N] [--max-sessions N] [--no-prune]
            [--legacy-threads]
  hgp client --addr HOST:PORT [--seed S] [--solves N] [--topologies N]
             [--incr-ops N] [--deadline-frac F] [--machine SHAPE[:CMS]]

options for `partition`:
  --demands FILE   one demand per line, (0,1]; default 0.8*k/n each
  --units N        rounding grid units per leaf (default 8)
  --trees P        decomposition trees in the distribution (default 8)
  --seed S         RNG seed (default 1)
  --threads N      worker threads for sampling + per-tree DPs
                   (0 = one per core, the default; 1 = serial;
                   the result never depends on it)
  --refine         polish the result with hierarchy-aware local search
  --multilevel     coarsen large graphs through the hgp-multilevel V-cycle
                   (exact solve on the coarsest graph, hierarchy-aware FM
                   refinement on the way back up)
  --no-prune       disable dominance pruning in the signature DP
                   (slower exhaustive tables; also accepted by `serve`)

`--threads` on `serve` sets the same knob for every daemon solve (peak
thread demand is workers x threads).

`serve` runs the placement daemon (newline-delimited text protocol; see
DESIGN.md) until a client sends `shutdown`. Connections are multiplexed
by an event loop by default; `--legacy-threads` restores the old
thread-per-connection front end (same wire protocol, lower connection
capacity). `client` plays a deterministic closed-loop request script
against a running server and summarises the replies.

machine SHAPE examples: 16 | 2x8 | 4x8x2:8,2,1,0";

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Cli {
    /// `hgp partition …`
    Partition {
        /// METIS graph path.
        graph: String,
        /// Machine descriptor.
        machine: String,
        /// Optional demand file.
        demands: Option<String>,
        /// Rounding units.
        units: u32,
        /// Distribution size.
        trees: usize,
        /// Seed.
        seed: u64,
        /// Worker width (0 = auto, 1 = serial).
        threads: usize,
        /// Post-refinement toggle.
        refine: bool,
        /// Route the solve through the multilevel V-cycle.
        multilevel: bool,
        /// Dominance pruning in the signature DP (on unless `--no-prune`).
        prune: bool,
    },
    /// `hgp info …`
    Info {
        /// METIS graph path.
        graph: String,
    },
    /// `hgp serve …`
    Serve {
        /// Bind address.
        addr: String,
        /// Solver worker threads.
        workers: usize,
        /// Bounded solve-queue depth.
        queue: usize,
        /// Per-solve worker width (0 = auto, 1 = serial).
        threads: usize,
        /// Decomposition-cache capacity.
        cache_capacity: usize,
        /// Maximum open incremental sessions.
        max_sessions: usize,
        /// Dominance pruning for every daemon solve (on unless `--no-prune`).
        prune: bool,
        /// Thread-per-connection front end instead of the event loop.
        legacy_threads: bool,
    },
    /// `hgp client …`
    Client {
        /// Server address.
        addr: String,
        /// Script seed.
        seed: u64,
        /// Solve requests in the script.
        solves: usize,
        /// Distinct topologies cycled through.
        topologies: usize,
        /// Incremental operations woven in.
        incr_ops: usize,
        /// Fraction of solves with a 1 ms deadline.
        deadline_frac: f64,
        /// Machine descriptor sent with every request.
        machine: String,
    },
}

impl Cli {
    /// Parses raw arguments.
    pub fn parse(args: &[String]) -> Result<Cli, String> {
        let mut it = args.iter();
        let cmd = it.next().ok_or("missing command")?;
        let mut graph = None;
        let mut machine = None;
        let mut demands = None;
        let mut units = 8u32;
        let mut trees = 8usize;
        let mut seed = 1u64;
        let mut threads = 0usize;
        let mut do_refine = false;
        let mut multilevel = false;
        let mut prune = true;
        let mut legacy_threads = false;
        let mut addr = None;
        let mut workers = 4usize;
        let mut queue = 64usize;
        let mut cache_capacity = 32usize;
        let mut max_sessions = 256usize;
        let mut solves = 12usize;
        let mut topologies = 3usize;
        let mut incr_ops = 8usize;
        let mut deadline_frac = 0.25f64;
        while let Some(flag) = it.next() {
            let mut value = |name: &str| -> Result<String, String> {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} needs a value"))
            };
            fn num<T: std::str::FromStr>(name: &str, v: String) -> Result<T, String> {
                v.parse().map_err(|_| format!("bad {name}"))
            }
            match flag.as_str() {
                "--graph" => graph = Some(value("--graph")?),
                "--machine" => machine = Some(value("--machine")?),
                "--demands" => demands = Some(value("--demands")?),
                "--units" => units = num("--units", value("--units")?)?,
                "--trees" => trees = num("--trees", value("--trees")?)?,
                "--seed" => seed = num("--seed", value("--seed")?)?,
                "--threads" => threads = num("--threads", value("--threads")?)?,
                "--refine" => do_refine = true,
                "--multilevel" => multilevel = true,
                "--no-prune" => prune = false,
                "--legacy-threads" => legacy_threads = true,
                "--addr" => addr = Some(value("--addr")?),
                "--workers" => workers = num("--workers", value("--workers")?)?,
                "--queue" => queue = num("--queue", value("--queue")?)?,
                "--cache-capacity" => {
                    cache_capacity = num("--cache-capacity", value("--cache-capacity")?)?
                }
                "--max-sessions" => max_sessions = num("--max-sessions", value("--max-sessions")?)?,
                "--solves" => solves = num("--solves", value("--solves")?)?,
                "--topologies" => topologies = num("--topologies", value("--topologies")?)?,
                "--incr-ops" => incr_ops = num("--incr-ops", value("--incr-ops")?)?,
                "--deadline-frac" => {
                    deadline_frac = num("--deadline-frac", value("--deadline-frac")?)?
                }
                other => return Err(format!("unknown flag {other}")),
            }
        }
        match cmd.as_str() {
            "partition" => Ok(Cli::Partition {
                graph: graph.ok_or("--graph is required")?,
                machine: machine.ok_or("--machine is required")?,
                demands,
                units: units.max(1),
                trees: trees.max(1),
                seed,
                threads,
                refine: do_refine,
                multilevel,
                prune,
            }),
            "info" => Ok(Cli::Info {
                graph: graph.ok_or("--graph is required")?,
            }),
            "serve" => Ok(Cli::Serve {
                addr: addr.unwrap_or_else(|| "127.0.0.1:7311".to_string()),
                workers: workers.max(1),
                queue: queue.max(1),
                threads,
                cache_capacity,
                max_sessions: max_sessions.max(1),
                prune,
                legacy_threads,
            }),
            "client" => Ok(Cli::Client {
                addr: addr.ok_or("--addr is required for client")?,
                seed,
                solves: solves.max(1),
                topologies: topologies.max(1),
                incr_ops,
                deadline_frac: deadline_frac.clamp(0.0, 1.0),
                machine: machine.unwrap_or_else(|| "2x4:4,1,0".to_string()),
            }),
            other => Err(format!("unknown command {other}")),
        }
    }
}

fn load_graph(path: &str) -> Result<Graph, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    read_metis(&text).map_err(|e| format!("{path}: {e}"))
}

fn load_demands(path: &str, n: usize) -> Result<Vec<f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let d: Vec<f64> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| l.parse::<f64>().map_err(|_| format!("bad demand {l:?}")))
        .collect::<Result<_, _>>()?;
    if d.len() != n {
        return Err(format!("expected {n} demands, found {}", d.len()));
    }
    Ok(d)
}

/// Executes a parsed command, writing the machine-readable result to `out`.
pub fn run(cli: &Cli, out: &mut impl Write) -> Result<(), String> {
    match cli {
        Cli::Info { graph } => {
            let g = load_graph(graph)?;
            let degrees: Vec<usize> = g.nodes().map(|v| g.degree(v)).collect();
            writeln!(out, "nodes      {}", g.num_nodes()).unwrap();
            writeln!(out, "edges      {}", g.num_edges()).unwrap();
            writeln!(out, "weight     {}", g.total_weight()).unwrap();
            writeln!(out, "connected  {}", traversal::is_connected(&g)).unwrap();
            writeln!(
                out,
                "degree     min {} max {} avg {:.2}",
                degrees.iter().min().unwrap_or(&0),
                degrees.iter().max().unwrap_or(&0),
                if degrees.is_empty() {
                    0.0
                } else {
                    degrees.iter().sum::<usize>() as f64 / degrees.len() as f64
                }
            )
            .unwrap();
            Ok(())
        }
        Cli::Partition {
            graph,
            machine,
            demands,
            units,
            trees,
            seed,
            threads,
            refine: do_refine,
            multilevel,
            prune,
        } => {
            let g = load_graph(graph)?;
            let h: Hierarchy = parse_hierarchy(machine).map_err(|e| e.to_string())?;
            let n = g.num_nodes();
            let d = match demands {
                Some(path) => load_demands(path, n)?,
                None => vec![(0.8 * h.num_leaves() as f64 / n as f64).min(1.0); n],
            };
            let inst = Instance::new(g, d);
            let opts = SolverOptions::builder()
                .trees(*trees)
                .units(*units)
                .seed(*seed)
                .threads(Parallelism::from_threads(*threads))
                .dp(DpOptions::builder().dominance_prune(*prune).build())
                .multilevel(hgp_core::MultilevelOptions {
                    enabled: *multilevel,
                    ..Default::default()
                })
                .build();
            let (mut assignment, worst) = if *multilevel {
                let rep = solve_multilevel(&inst, &h, &opts).map_err(|e| e.to_string())?;
                eprintln!(
                    "multilevel: {} levels, {} -> {} nodes (x{:.1}), refine gain {:.4}",
                    rep.levels, n, rep.coarsest_nodes, rep.reduction, rep.refine_gain
                );
                (rep.assignment.clone(), rep.violation)
            } else {
                let rep = Solve::new(&inst, &h)
                    .options(opts)
                    .run()
                    .map_err(|e| e.to_string())?;
                let worst = rep.violation.worst_factor();
                (rep.assignment.clone(), worst)
            };
            if *do_refine {
                let cap = worst.max(1.0);
                refine(
                    &mut assignment,
                    &inst,
                    &h,
                    &RefineOpts {
                        capacity_factor: cap,
                        ..Default::default()
                    },
                );
            }
            let cost = assignment.cost(&inst, &h);
            let violation = assignment.violation_report(&inst, &h).worst_factor();
            eprintln!(
                "cost {cost:.4}  violation {violation:.3}  (bound {:.2})",
                (1.0 + n as f64 / *units as f64).min(2.0) * (1.0 + h.height() as f64)
            );
            writeln!(out, "# task ancestors(level 1..h)").unwrap();
            for t in 0..n {
                let leaf = assignment.leaf(t);
                write!(out, "{t}").unwrap();
                for j in 1..=h.height() {
                    write!(out, " {}", h.ancestor_at_level(leaf, j)).unwrap();
                }
                writeln!(out).unwrap();
            }
            Ok(())
        }
        Cli::Serve {
            addr,
            workers,
            queue,
            threads,
            cache_capacity,
            max_sessions,
            prune,
            legacy_threads,
        } => {
            let mut server = Server::start(
                ServerConfig::builder()
                    .addr(addr.clone())
                    .workers(*workers)
                    .queue_capacity(*queue)
                    .parallelism(Parallelism::from_threads(*threads))
                    .cache_capacity(*cache_capacity)
                    .max_sessions(*max_sessions)
                    .dp(DpOptions::builder().dominance_prune(*prune).build())
                    .legacy_threads(*legacy_threads)
                    .build(),
            )
            .map_err(|e| format!("cannot bind {addr}: {e}"))?;
            writeln!(out, "listening {}", server.addr()).unwrap();
            out.flush().ok();
            server.join(); // returns once a client sends `shutdown`
            writeln!(out, "drained").unwrap();
            Ok(())
        }
        Cli::Client {
            addr,
            seed,
            solves,
            topologies,
            incr_ops,
            deadline_frac,
            machine,
        } => {
            let opts = RequestScriptOpts {
                solves: *solves,
                topologies: *topologies,
                tight_deadline_frac: *deadline_frac,
                machine: machine.clone(),
                incr_ops: *incr_ops,
            };
            let script = request_script(*seed, &opts);
            run_client(addr, &script, out)
        }
    }
}

/// Plays a request script over one connection, closed-loop (each request
/// waits for its reply), and writes a tally plus the server's final
/// `stats` line.
fn run_client(addr: &str, script: &[String], out: &mut impl Write) -> Result<(), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("cannot connect {addr}: {e}"))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("clone stream: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut session: Option<u64> = None;
    let (mut ok, mut err, mut degraded) = (0u64, 0u64, 0u64);
    let mut last_stats = String::new();
    for line in script {
        let line = match session {
            Some(s) => substitute_session(line, s),
            None => line.clone(),
        };
        if line.contains("session=SID") {
            return Err("script uses a session before `new` succeeded".to_string());
        }
        writer
            .write_all(format!("{line}\n").as_bytes())
            .and_then(|()| writer.flush())
            .map_err(|e| format!("send: {e}"))?;
        let mut reply = String::new();
        reader
            .read_line(&mut reply)
            .map_err(|e| format!("recv: {e}"))?;
        let reply = reply.trim();
        if reply.starts_with("ok") {
            ok += 1;
        } else {
            err += 1;
        }
        if reply_field(reply, "degraded") == Some("1") {
            degraded += 1;
        }
        if line.starts_with("place-incremental new") {
            session = reply_field(reply, "session").and_then(|s| s.parse().ok());
        }
        if line == "stats" {
            last_stats = reply.to_string();
        }
    }
    writeln!(
        out,
        "sent={} ok={ok} err={err} degraded={degraded}",
        script.len()
    )
    .unwrap();
    if !last_stats.is_empty() {
        writeln!(out, "{last_stats}").unwrap();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_partition_flags() {
        let cli = Cli::parse(&argv(
            "partition --graph g.metis --machine 2x4:4,1,0 --units 16 --trees 3 --seed 9 \
             --threads 2 --refine --no-prune",
        ))
        .unwrap();
        assert_eq!(
            cli,
            Cli::Partition {
                graph: "g.metis".into(),
                machine: "2x4:4,1,0".into(),
                demands: None,
                units: 16,
                trees: 3,
                seed: 9,
                threads: 2,
                refine: true,
                multilevel: false,
                prune: false,
            }
        );
    }

    #[test]
    fn parses_info() {
        let cli = Cli::parse(&argv("info --graph g.metis")).unwrap();
        assert_eq!(
            cli,
            Cli::Info {
                graph: "g.metis".into()
            }
        );
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Cli::parse(&argv("")).is_err());
        assert!(Cli::parse(&argv("partition --machine 2x2")).is_err());
        assert!(Cli::parse(&argv("partition --graph g")).is_err());
        assert!(Cli::parse(&argv("frobnicate --graph g")).is_err());
        assert!(Cli::parse(&argv("partition --graph g --machine 2x2 --units x")).is_err());
        assert!(Cli::parse(&argv("partition --graph g --machine 2x2 --wat")).is_err());
        assert!(
            Cli::parse(&argv("client --solves 3")).is_err(),
            "client needs --addr"
        );
        assert!(Cli::parse(&argv("serve --workers x")).is_err());
    }

    #[test]
    fn parses_serve_and_client() {
        let cli = Cli::parse(&argv(
            "serve --addr 127.0.0.1:0 --workers 2 --queue 8 --threads 1",
        ))
        .unwrap();
        assert_eq!(
            cli,
            Cli::Serve {
                addr: "127.0.0.1:0".into(),
                workers: 2,
                queue: 8,
                threads: 1,
                cache_capacity: 32,
                max_sessions: 256,
                prune: true,
                legacy_threads: false,
            }
        );
        // the legacy front end stays selectable
        let cli = Cli::parse(&argv("serve --legacy-threads")).unwrap();
        assert!(matches!(
            cli,
            Cli::Serve {
                legacy_threads: true,
                ..
            }
        ));
        let cli = Cli::parse(&argv(
            "client --addr 127.0.0.1:7311 --seed 5 --solves 6 --topologies 2",
        ))
        .unwrap();
        assert_eq!(
            cli,
            Cli::Client {
                addr: "127.0.0.1:7311".into(),
                seed: 5,
                solves: 6,
                topologies: 2,
                incr_ops: 8,
                deadline_frac: 0.25,
                machine: "2x4:4,1,0".into(),
            }
        );
    }

    #[test]
    fn client_drives_a_live_server() {
        let server = Server::start(ServerConfig::builder().workers(2).build()).unwrap();
        let cli = Cli::Client {
            addr: server.addr().to_string(),
            seed: 4,
            solves: 4,
            topologies: 2,
            incr_ops: 4,
            deadline_frac: 0.0,
            machine: "2x2:4,1,0".into(),
        };
        let mut out = Vec::new();
        run(&cli, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("err=0"), "replies had errors: {text}");
        assert!(text.contains("ok requests="), "no stats line: {text}");
        server.shutdown();
    }

    #[test]
    fn end_to_end_partition_on_temp_file() {
        let dir = std::env::temp_dir().join("hgp-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dumbbell.metis");
        // two triangles + bridge, unweighted
        std::fs::write(&path, "6 7\n2 3\n1 3\n1 2 4\n3 5 6\n4 6\n4 5\n").unwrap();
        let cli = Cli::parse(&[
            "partition".into(),
            "--graph".into(),
            path.to_string_lossy().into_owned(),
            "--machine".into(),
            "2x3:4,1,0".into(),
            "--seed".into(),
            "3".into(),
        ])
        .unwrap();
        let mut out = Vec::new();
        run(&cli, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(lines.len(), 6);
        // each line: task socket core
        for (t, line) in lines.iter().enumerate() {
            let toks: Vec<&str> = line.split_whitespace().collect();
            assert_eq!(toks.len(), 3);
            assert_eq!(toks[0].parse::<usize>().unwrap(), t);
            assert!(toks[1].parse::<usize>().unwrap() < 2);
            assert!(toks[2].parse::<usize>().unwrap() < 6);
        }
    }

    #[test]
    fn multilevel_flag_parses_and_partitions() {
        let cli = Cli::parse(&argv(
            "partition --graph g.metis --machine 2x4:4,1,0 --multilevel",
        ))
        .unwrap();
        match &cli {
            Cli::Partition { multilevel, .. } => assert!(multilevel),
            other => panic!("parsed {other:?}"),
        }
        // end to end on a mesh big enough to coarsen (default
        // coarsen_until is 192): an 18x18 grid in METIS format
        let dir = std::env::temp_dir().join("hgp-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mesh18.metis");
        let (rows, cols) = (18usize, 18usize);
        let mut body = String::new();
        let mut edges = 0;
        for r in 0..rows {
            for c in 0..cols {
                let mut nbrs = Vec::new();
                if c + 1 < cols {
                    nbrs.push(r * cols + c + 2); // METIS ids are 1-based
                    edges += 1;
                }
                if c > 0 {
                    nbrs.push(r * cols + c);
                }
                if r + 1 < rows {
                    nbrs.push((r + 1) * cols + c + 1);
                    edges += 1;
                }
                if r > 0 {
                    nbrs.push((r - 1) * cols + c + 1);
                }
                body.push_str(
                    &nbrs
                        .iter()
                        .map(|x| x.to_string())
                        .collect::<Vec<_>>()
                        .join(" "),
                );
                body.push('\n');
            }
        }
        let header = format!("{} {edges}\n", rows * cols);
        std::fs::write(&path, header + &body).unwrap();
        let cli = Cli::parse(&[
            "partition".into(),
            "--graph".into(),
            path.to_string_lossy().into_owned(),
            "--machine".into(),
            "2x4:4,1,0".into(),
            "--trees".into(),
            "4".into(),
            "--units".into(),
            "4".into(),
            "--multilevel".into(),
        ])
        .unwrap();
        let mut out = Vec::new();
        run(&cli, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(lines.len(), rows * cols);
    }

    #[test]
    fn info_reports_stats() {
        let dir = std::env::temp_dir().join("hgp-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("path.metis");
        std::fs::write(&path, "3 2\n2\n1 3\n2\n").unwrap();
        let cli = Cli::parse(&[
            "info".into(),
            "--graph".into(),
            path.to_string_lossy().into_owned(),
        ])
        .unwrap();
        let mut out = Vec::new();
        run(&cli, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("nodes      3"));
        assert!(text.contains("connected  true"));
    }
}
