//! `hgp` — command-line hierarchical graph partitioner.
//!
//! ```text
//! hgp partition --graph app.metis --machine 2x8:4,1,0 [--demands d.txt]
//!               [--units 8] [--trees 8] [--seed 1] [--threads 0] [--refine]
//! hgp info --graph app.metis
//! hgp serve [--addr 127.0.0.1:7311] [--workers 4] [--queue 64] [--threads 0]
//! hgp client --addr 127.0.0.1:7311 [--seed 1] [--solves 12]
//! ```
//!
//! `partition` reads a METIS `.graph` file, solves HGP for the given
//! machine descriptor (see `hgp-hierarchy::parse`), and prints one
//! `task level1 level2 … leaf` line per task plus a cost/violation
//! summary on stderr. `info` prints instance statistics. `serve` runs the
//! `hgp-server` placement daemon until a client sends `shutdown`; `client`
//! plays a deterministic load-generation script against a running server.

use hgp_cli::{run, Cli};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match Cli::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", hgp_cli::USAGE);
            std::process::exit(2);
        }
    };
    if let Err(e) = run(&cli, &mut std::io::stdout()) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
