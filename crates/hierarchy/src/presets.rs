//! Machine-topology presets matching the scenarios in §1 of the paper.
//!
//! The paper's motivating platform is a commodity streaming server: four CPU
//! sockets, eight cores per socket, two hyperthreads per core. Tasks pinned
//! to the same core share L1–L2, same socket shares L3, across sockets only
//! the memory backplane. The presets here encode such platforms as
//! [`Hierarchy`] values with decreasing cost multipliers; the absolute
//! numbers are relative communication costs (cache-line transfer cost
//! ratios), and callers can scale them freely.

use crate::Hierarchy;

/// Flat `k`-way partitioning (`h = 1`): the classic k-balanced graph
/// partitioning objective. `cm = [1, 0]`: an edge costs its weight iff it is
/// cut.
pub fn flat(k: usize) -> Hierarchy {
    Hierarchy::new(vec![k], vec![1.0, 0.0])
}

/// Minimum-bisection (`k = 2`, `h = 1`).
pub fn bisection() -> Hierarchy {
    flat(2)
}

/// Two-level multicore box: `sockets × cores_per_socket` cores.
/// Cross-socket traffic costs `remote`, same-socket cross-core traffic
/// costs `shared`, same-core traffic is free.
pub fn multicore(sockets: usize, cores_per_socket: usize, remote: f64, shared: f64) -> Hierarchy {
    Hierarchy::new(vec![sockets, cores_per_socket], vec![remote, shared, 0.0])
}

/// The paper's motivating TidalRace server: 4 sockets × 8 cores × 2
/// hyperthreads (64 schedulable cores), with cost ratio
/// backplane : L3 : L1/L2 = 8 : 2 : 1 and free intra-thread-pair traffic.
pub fn tidalrace_server() -> Hierarchy {
    Hierarchy::new(vec![4, 8, 2], vec![8.0, 2.0, 1.0, 0.0])
}

/// Three-level hyperthreaded box with explicit degrees and costs.
pub fn hyperthreaded(
    sockets: usize,
    cores_per_socket: usize,
    threads_per_core: usize,
    remote: f64,
    shared_l3: f64,
    shared_core: f64,
) -> Hierarchy {
    Hierarchy::new(
        vec![sockets, cores_per_socket, threads_per_core],
        vec![remote, shared_l3, shared_core, 0.0],
    )
}

/// Distributed cluster: `racks × servers_per_rack × cores_per_server`,
/// with cross-rack : cross-server : cross-core cost `inter_rack :
/// intra_rack : intra_server` (and free same-core traffic).
pub fn datacenter(
    racks: usize,
    servers_per_rack: usize,
    cores_per_server: usize,
    inter_rack: f64,
    intra_rack: f64,
    intra_server: f64,
) -> Hierarchy {
    Hierarchy::new(
        vec![racks, servers_per_rack, cores_per_server],
        vec![inter_rack, intra_rack, intra_server, 0.0],
    )
}

/// A uniform-cost hierarchy of the same shape as `base`: every cut costs the
/// same regardless of level (`cm = [1, …, 1, 0]`). Under this hierarchy HGP
/// degenerates exactly to k-BGP — the control arm of the crossover
/// experiment (F3).
pub fn uniform_like(base: &Hierarchy) -> Hierarchy {
    let degrees: Vec<usize> = (0..base.height()).map(|j| base.degree(j)).collect();
    let mut cm = vec![1.0; base.height()];
    cm.push(0.0);
    Hierarchy::new(degrees, cm)
}

/// Geometric cost profile of a given steepness over the shape of `base`:
/// `cm(j) = ratio^(h - j) - 1` scaled so `cm(h) = 0` and `cm(h-1) = 1`.
/// `ratio = 1` collapses to [`uniform_like`]; larger ratios reward keeping
/// heavy edges deep in the hierarchy more strongly.
pub fn geometric_like(base: &Hierarchy, ratio: f64) -> Hierarchy {
    assert!(ratio >= 1.0, "ratio must be ≥ 1");
    let h = base.height();
    let degrees: Vec<usize> = (0..h).map(|j| base.degree(j)).collect();
    let cm: Vec<f64> = (0..=h)
        .map(|j| {
            if j == h {
                0.0
            } else if ratio == 1.0 {
                1.0
            } else {
                (ratio.powi((h - j) as i32) - 1.0) / (ratio - 1.0)
            }
        })
        .collect();
    Hierarchy::new(degrees, cm)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_is_kbgp() {
        let h = flat(5);
        assert_eq!(h.height(), 1);
        assert_eq!(h.num_leaves(), 5);
        assert_eq!(h.cost_multiplier(0), 1.0);
        assert_eq!(h.cost_multiplier(1), 0.0);
    }

    #[test]
    fn tidalrace_has_64_cores() {
        let h = tidalrace_server();
        assert_eq!(h.num_leaves(), 64);
        assert_eq!(h.height(), 3);
        // hyperthread pair on the same core: level-3 LCA would be the same
        // leaf; two threads of one core share level 2
        assert_eq!(h.lca_level(0, 1), 2);
        assert!((h.edge_multiplier(0, 1) - 1.0).abs() < 1e-12);
        // across sockets
        assert_eq!(h.lca_level(0, 16), 0);
    }

    #[test]
    fn datacenter_shape() {
        let h = datacenter(3, 4, 8, 20.0, 5.0, 1.0);
        assert_eq!(h.num_leaves(), 96);
        assert_eq!(h.capacity(1), 32);
        assert_eq!(h.capacity(2), 8);
    }

    #[test]
    fn uniform_like_flattens_costs() {
        let base = tidalrace_server();
        let u = uniform_like(&base);
        assert_eq!(u.height(), base.height());
        assert_eq!(u.num_leaves(), base.num_leaves());
        for j in 0..u.height() {
            assert_eq!(u.cost_multiplier(j), 1.0);
        }
        assert_eq!(u.cost_multiplier(u.height()), 0.0);
    }

    #[test]
    fn geometric_ratio_one_is_uniform() {
        let base = multicore(2, 4, 4.0, 1.0);
        let g = geometric_like(&base, 1.0);
        assert_eq!(g.cost_multiplier(0), 1.0);
        assert_eq!(g.cost_multiplier(1), 1.0);
        assert_eq!(g.cost_multiplier(2), 0.0);
    }

    #[test]
    fn geometric_steepness_grows() {
        let base = multicore(2, 4, 4.0, 1.0);
        let g2 = geometric_like(&base, 2.0);
        // cm = [(4-1)/1, (2-1)/1, 0] = [3, 1, 0]
        assert!((g2.cost_multiplier(0) - 3.0).abs() < 1e-12);
        assert!((g2.cost_multiplier(1) - 1.0).abs() < 1e-12);
        let g4 = geometric_like(&base, 4.0);
        assert!(g4.cost_multiplier(0) > g2.cost_multiplier(0));
        // normalised so cm(h-1) = 1 in both
        assert!((g4.cost_multiplier(1) - 1.0).abs() < 1e-12);
    }
}
