//! The hierarchy tree `H`: machine/cluster topologies with per-level
//! communication cost multipliers.
//!
//! `H` has height `h` and is regular at every level: each Level-`j` node has
//! exactly `DEG(j)` children (`j ∈ 0..h`), so there are `k = Π DEG(j)`
//! leaves, each of capacity 1. Level `j` carries a cost multiplier `cm(j)`
//! with `cm(0) ≥ cm(1) ≥ … ≥ cm(h)`: an edge of the task graph whose
//! endpoints are assigned to leaves whose lowest common ancestor sits at
//! level `j` costs `cm(j) · w(e)` (Equation 1 of the paper).
//!
//! Because `H` is regular, leaves are identified by dense indices
//! `0..k` and ancestors/LCAs are pure arithmetic — no tree structure is
//! materialised.

#![warn(missing_docs)]

pub mod parse;
pub mod presets;

pub use parse::{parse_hierarchy, ParseErrorKind, ParseHierarchyError};

/// A regular hierarchy tree with cost multipliers.
///
/// Invariants (checked at construction):
/// * `degrees.len() == h ≥ 1`, every degree ≥ 1 (level `j` nodes have
///   `degrees[j]` children);
/// * `cost_multipliers.len() == h + 1`, entries finite, non-negative and
///   non-increasing.
#[derive(Clone, Debug, PartialEq)]
pub struct Hierarchy {
    degrees: Vec<usize>,
    cm: Vec<f64>,
    /// cp[j] = number of leaves under a Level-j node; cp[h] = 1.
    cp: Vec<usize>,
}

impl Hierarchy {
    /// Builds a hierarchy of height `degrees.len()` with the given per-level
    /// cost multipliers (`cost_multipliers[j] = cm(j)`, one per level
    /// `0..=h`).
    ///
    /// # Panics
    /// Panics if the invariants described on [`Hierarchy`] are violated.
    pub fn new(degrees: Vec<usize>, cost_multipliers: Vec<f64>) -> Self {
        let h = degrees.len();
        assert!(h >= 1, "hierarchy height must be at least 1");
        assert!(
            degrees.iter().all(|&d| d >= 1),
            "every level degree must be at least 1"
        );
        assert_eq!(
            cost_multipliers.len(),
            h + 1,
            "need one cost multiplier per level 0..=h"
        );
        assert!(
            cost_multipliers.iter().all(|c| c.is_finite() && *c >= 0.0),
            "cost multipliers must be finite and non-negative"
        );
        assert!(
            cost_multipliers.windows(2).all(|w| w[0] >= w[1]),
            "cost multipliers must be non-increasing with level"
        );
        let mut cp = vec![1usize; h + 1];
        for j in (0..h).rev() {
            cp[j] = cp[j + 1]
                .checked_mul(degrees[j])
                .expect("leaf count overflows usize");
        }
        Self {
            degrees,
            cm: cost_multipliers,
            cp,
        }
    }

    /// Height `h` of the tree (leaves are at level `h`).
    #[inline]
    pub fn height(&self) -> usize {
        self.degrees.len()
    }

    /// Number of leaves `k = CP(0)`.
    #[inline]
    pub fn num_leaves(&self) -> usize {
        self.cp[0]
    }

    /// `DEG(j)`: the number of children of a Level-`j` node, `j ∈ 0..h`.
    #[inline]
    pub fn degree(&self, level: usize) -> usize {
        self.degrees[level]
    }

    /// `CP(j)`: the number of leaves (capacity) under a Level-`j` node.
    /// `CP(h) = 1`.
    #[inline]
    pub fn capacity(&self, level: usize) -> usize {
        self.cp[level]
    }

    /// `cm(j)`: cost multiplier for edges whose endpoints' LCA is at level
    /// `j`.
    #[inline]
    pub fn cost_multiplier(&self, level: usize) -> f64 {
        self.cm[level]
    }

    /// Number of Level-`j` nodes (`k / CP(j)`).
    #[inline]
    pub fn nodes_at_level(&self, level: usize) -> usize {
        self.cp[0] / self.cp[level]
    }

    /// The index (among Level-`j` nodes, left to right) of the Level-`j`
    /// ancestor of `leaf`.
    #[inline]
    pub fn ancestor_at_level(&self, leaf: usize, level: usize) -> usize {
        debug_assert!(leaf < self.num_leaves());
        leaf / self.cp[level]
    }

    /// Level of the lowest common ancestor of two leaves (two equal leaves
    /// have LCA level `h`).
    pub fn lca_level(&self, a: usize, b: usize) -> usize {
        debug_assert!(a < self.num_leaves() && b < self.num_leaves());
        // Highest (deepest) level at which the ancestors still coincide.
        // Walk from the leaves upward; O(h) with h tiny in practice.
        let mut level = self.height();
        while level > 0 && a / self.cp[level] != b / self.cp[level] {
            level -= 1;
        }
        level
    }

    /// The communication cost multiplier applied to an edge whose endpoints
    /// live on leaves `a` and `b` — `cm(LCA level)`. This is the per-edge
    /// factor in Equation 1 of the paper.
    #[inline]
    pub fn edge_multiplier(&self, a: usize, b: usize) -> f64 {
        self.cm[self.lca_level(a, b)]
    }

    /// True if `cm(h) == 0` (the normalised form assumed throughout §2+ of
    /// the paper).
    pub fn is_normalized(&self) -> bool {
        self.cm[self.height()] == 0.0
    }

    /// Lemma 1: converts to normalised cost multipliers. Returns the
    /// normalised hierarchy and the constant `cm(h)` that was subtracted
    /// from every level. For any assignment `p`,
    /// `cost_original(p) = cost_normalized(p) + cm(h) · Σ_e w(e)`,
    /// so optimising the normalised instance optimises the original.
    pub fn normalized(&self) -> (Hierarchy, f64) {
        let shift = self.cm[self.height()];
        let cm = self.cm.iter().map(|c| c - shift).collect();
        (
            Hierarchy {
                degrees: self.degrees.clone(),
                cm,
                cp: self.cp.clone(),
            },
            shift,
        )
    }

    /// The per-level cost *deltas* `(cm(j-1) - cm(j)) / 2` for `j ∈ 1..=h`,
    /// as used by the mirror-function cost (Equation 3). Index 0 of the
    /// returned vector corresponds to `j = 1`.
    pub fn half_deltas(&self) -> Vec<f64> {
        (1..=self.height())
            .map(|j| (self.cm[j - 1] - self.cm[j]) / 2.0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_level() -> Hierarchy {
        // 2 sockets × 3 cores, remote:shared:local = 4:1:0
        Hierarchy::new(vec![2, 3], vec![4.0, 1.0, 0.0])
    }

    #[test]
    fn capacities_and_counts() {
        let h = two_level();
        assert_eq!(h.height(), 2);
        assert_eq!(h.num_leaves(), 6);
        assert_eq!(h.capacity(0), 6);
        assert_eq!(h.capacity(1), 3);
        assert_eq!(h.capacity(2), 1);
        assert_eq!(h.nodes_at_level(1), 2);
        assert_eq!(h.nodes_at_level(2), 6);
    }

    #[test]
    fn lca_levels() {
        let h = two_level();
        assert_eq!(h.lca_level(0, 0), 2); // same leaf
        assert_eq!(h.lca_level(0, 2), 1); // same socket
        assert_eq!(h.lca_level(0, 3), 0); // across sockets
        assert_eq!(h.lca_level(5, 3), 1);
        assert!((h.edge_multiplier(0, 2) - 1.0).abs() < 1e-12);
        assert!((h.edge_multiplier(0, 3) - 4.0).abs() < 1e-12);
        assert!((h.edge_multiplier(1, 1) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn ancestors() {
        let h = two_level();
        assert_eq!(h.ancestor_at_level(4, 1), 1);
        assert_eq!(h.ancestor_at_level(2, 1), 0);
        assert_eq!(h.ancestor_at_level(5, 0), 0);
        assert_eq!(h.ancestor_at_level(5, 2), 5);
    }

    #[test]
    fn normalization_lemma1() {
        let h = Hierarchy::new(vec![2, 2], vec![5.0, 3.0, 2.0]);
        assert!(!h.is_normalized());
        let (hn, shift) = h.normalized();
        assert!((shift - 2.0).abs() < 1e-12);
        assert!(hn.is_normalized());
        // edge multipliers drop uniformly by the shift
        for (a, b) in [(0usize, 1usize), (0, 2), (1, 3), (2, 2)] {
            assert!(
                (h.edge_multiplier(a, b) - hn.edge_multiplier(a, b) - shift).abs() < 1e-12,
                "multiplier shift mismatch for ({a},{b})"
            );
        }
    }

    #[test]
    fn half_deltas_match_cm() {
        let h = Hierarchy::new(vec![2, 2], vec![5.0, 3.0, 0.0]);
        let d = h.half_deltas();
        assert_eq!(d.len(), 2);
        assert!((d[0] - 1.0).abs() < 1e-12);
        assert!((d[1] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn three_level_lca() {
        // 2 racks × 2 servers × 2 cores
        let h = Hierarchy::new(vec![2, 2, 2], vec![10.0, 4.0, 1.0, 0.0]);
        assert_eq!(h.num_leaves(), 8);
        assert_eq!(h.lca_level(0, 1), 2);
        assert_eq!(h.lca_level(0, 2), 1);
        assert_eq!(h.lca_level(0, 4), 0);
        assert_eq!(h.lca_level(6, 7), 2);
        assert_eq!(h.lca_level(5, 6), 1);
    }

    #[test]
    #[should_panic(expected = "non-increasing")]
    fn rejects_increasing_multipliers() {
        Hierarchy::new(vec![2], vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "one cost multiplier per level")]
    fn rejects_wrong_multiplier_count() {
        Hierarchy::new(vec![2, 2], vec![1.0, 0.0]);
    }

    #[test]
    fn flat_hierarchy_is_kbgp() {
        let h = Hierarchy::new(vec![4], vec![1.0, 0.0]);
        assert_eq!(h.height(), 1);
        assert_eq!(h.num_leaves(), 4);
        assert_eq!(h.lca_level(0, 1), 0);
        assert_eq!(h.lca_level(2, 2), 1);
    }
}
