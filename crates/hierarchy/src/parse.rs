//! Textual machine descriptors.
//!
//! Grammar: `DEG x DEG x … [: cm0, cm1, …, cmh]`, e.g.
//!
//! * `"2x8"` — 2 sockets × 8 cores with default geometric costs,
//! * `"4x8x2:8,2,1,0"` — the TidalRace server with explicit multipliers,
//! * `"16"` — flat 16-way partitioning.
//!
//! When multipliers are omitted, level `j` costs `2^(h-j) - 1` (geometric
//! with ratio 2, normalised so `cm(h) = 0`).

use crate::Hierarchy;

/// Tallest machine a descriptor may describe. Matches the signature DP's
/// `MAX_HEIGHT` (one 16-bit lane per level in a `u64`): descriptors that
/// could never be solved are rejected here, at the text boundary, with a
/// message instead of a downstream panic.
pub const MAX_PARSE_HEIGHT: usize = 4;

/// Most leaves a descriptor may describe. Keeps adversarial shapes like
/// `"1000x1000"` (10⁶ leaves) from allocating per-leaf state downstream.
pub const MAX_PARSE_LEAVES: usize = 65_536;

/// Coarse classification of a [`ParseHierarchyError`], for transports
/// that map parse failures onto distinct wire error codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// The descriptor is malformed or semantically invalid.
    Invalid,
    /// The descriptor is well-formed but describes a machine beyond the
    /// supported caps ([`MAX_PARSE_HEIGHT`] levels, [`MAX_PARSE_LEAVES`]
    /// leaves).
    TooLarge,
}

/// Parse failure for a machine descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseHierarchyError {
    /// What went wrong.
    pub msg: String,
    /// Which class of failure this is.
    pub kind: ParseErrorKind,
}

impl std::fmt::Display for ParseHierarchyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad machine descriptor: {}", self.msg)
    }
}

impl std::error::Error for ParseHierarchyError {}

fn err(msg: impl Into<String>) -> ParseHierarchyError {
    ParseHierarchyError {
        msg: msg.into(),
        kind: ParseErrorKind::Invalid,
    }
}

fn too_large(msg: impl Into<String>) -> ParseHierarchyError {
    ParseHierarchyError {
        msg: msg.into(),
        kind: ParseErrorKind::TooLarge,
    }
}

/// Parses a machine descriptor (see the module docs for the grammar).
pub fn parse_hierarchy(desc: &str) -> Result<Hierarchy, ParseHierarchyError> {
    let desc = desc.trim();
    let (shape, costs) = match desc.split_once(':') {
        Some((s, c)) => (s, Some(c)),
        None => (desc, None),
    };
    let degrees: Vec<usize> = shape
        .split('x')
        .map(|t| {
            t.trim()
                .parse::<usize>()
                .map_err(|_| err(format!("bad degree {t:?}")))
                .and_then(|d| {
                    if d >= 1 {
                        Ok(d)
                    } else {
                        Err(err("degrees must be >= 1"))
                    }
                })
        })
        .collect::<Result<_, _>>()?;
    if degrees.is_empty() {
        return Err(err("empty shape"));
    }
    if degrees.len() > MAX_PARSE_HEIGHT {
        return Err(too_large(format!(
            "height {} exceeds the supported maximum of {MAX_PARSE_HEIGHT} levels",
            degrees.len()
        )));
    }
    // overflow-safe product check: degrees are >= 1 so a running product
    // that exceeds the cap can only grow
    let mut leaves: usize = 1;
    for &d in &degrees {
        leaves = leaves.saturating_mul(d);
        if leaves > MAX_PARSE_LEAVES {
            return Err(too_large(format!(
                "shape describes more than {MAX_PARSE_LEAVES} leaves"
            )));
        }
    }
    let h = degrees.len();
    let cm: Vec<f64> = match costs {
        Some(c) => {
            let cm: Vec<f64> = c
                .split(',')
                .map(|t| {
                    t.trim()
                        .parse::<f64>()
                        .map_err(|_| err(format!("bad multiplier {t:?}")))
                })
                .collect::<Result<_, _>>()?;
            if cm.len() != h + 1 {
                return Err(err(format!(
                    "need {} multipliers for height {h}, got {}",
                    h + 1,
                    cm.len()
                )));
            }
            if cm.iter().any(|c| !c.is_finite() || *c < 0.0) {
                return Err(err("multipliers must be finite and non-negative"));
            }
            if cm.windows(2).any(|w| w[0] < w[1]) {
                return Err(err("multipliers must be non-increasing"));
            }
            cm
        }
        None => (0..=h).map(|j| (2f64.powi((h - j) as i32)) - 1.0).collect(),
    };
    Ok(Hierarchy::new(degrees, cm))
}

impl std::str::FromStr for Hierarchy {
    type Err = ParseHierarchyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        parse_hierarchy(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_descriptor() {
        let h = parse_hierarchy("16").unwrap();
        assert_eq!(h.height(), 1);
        assert_eq!(h.num_leaves(), 16);
        assert_eq!(h.cost_multiplier(0), 1.0);
        assert_eq!(h.cost_multiplier(1), 0.0);
    }

    #[test]
    fn default_costs_are_geometric() {
        let h = parse_hierarchy("2x8x2").unwrap();
        assert_eq!(h.num_leaves(), 32);
        assert_eq!(h.cost_multiplier(0), 7.0);
        assert_eq!(h.cost_multiplier(1), 3.0);
        assert_eq!(h.cost_multiplier(2), 1.0);
        assert_eq!(h.cost_multiplier(3), 0.0);
    }

    #[test]
    fn explicit_costs() {
        let h: Hierarchy = "4x8x2:8,2,1,0".parse().unwrap();
        assert_eq!(h.num_leaves(), 64);
        assert_eq!(h.cost_multiplier(0), 8.0);
        assert_eq!(h.cost_multiplier(3), 0.0);
    }

    #[test]
    fn whitespace_tolerated() {
        let h = parse_hierarchy(" 2 x 4 : 4, 1, 0 ").unwrap();
        assert_eq!(h.num_leaves(), 8);
        assert_eq!(h.cost_multiplier(1), 1.0);
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse_hierarchy("").unwrap_err().msg.contains("bad degree"));
        assert_eq!(
            parse_hierarchy("").unwrap_err().kind,
            ParseErrorKind::Invalid
        );
        assert!(parse_hierarchy("2xfoo")
            .unwrap_err()
            .msg
            .contains("bad degree"));
        assert!(parse_hierarchy("0x2").unwrap_err().msg.contains(">= 1"));
        assert!(parse_hierarchy("2x2:1,2,3")
            .unwrap_err()
            .msg
            .contains("non-increasing"));
        assert!(parse_hierarchy("2x2:1,0")
            .unwrap_err()
            .msg
            .contains("need 3 multipliers"));
        assert!(parse_hierarchy("2x2:3,x,0")
            .unwrap_err()
            .msg
            .contains("bad multiplier"));
    }

    #[test]
    fn rejects_unsupported_heights() {
        // height 4 is the ceiling; 5 levels must fail at parse, not panic
        // later inside the signature DP
        assert!(parse_hierarchy("2x2x2x2").is_ok());
        let e = parse_hierarchy("2x2x2x2x2").unwrap_err();
        assert!(e.msg.contains("height 5"), "{e}");
        assert_eq!(e.kind, ParseErrorKind::TooLarge);
        let e = parse_hierarchy("2x2x2x2x2:16,8,4,2,1,0").unwrap_err();
        assert!(e.msg.contains("height 5"), "{e}");
        assert_eq!(e.kind, ParseErrorKind::TooLarge);
    }

    #[test]
    fn rejects_oversized_shapes() {
        // 10^6 leaves
        let e = parse_hierarchy("1000x1000").unwrap_err();
        assert!(e.msg.contains("leaves"), "{e}");
        assert_eq!(e.kind, ParseErrorKind::TooLarge);
        // usize-overflow attempt must not wrap around the cap
        let e = parse_hierarchy(&format!("{0}x{0}x{0}", u64::MAX)).unwrap_err();
        assert!(e.msg.contains("leaves"), "{e}");
        assert_eq!(e.kind, ParseErrorKind::TooLarge);
        // the boundary itself is fine
        assert_eq!(parse_hierarchy("65536").unwrap().num_leaves(), 65_536);
        assert!(parse_hierarchy("65537").is_err());
    }
}
