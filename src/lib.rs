//! Hierarchical graph partitioning (SPAA 2014) — umbrella crate.
//!
//! Assigns communicating tasks to the leaves of a machine hierarchy
//! (cores within sockets within racks) so that no resource is
//! oversubscribed and the hierarchy-weighted communication cost is
//! minimised, using the paper's `(O(log n), (1+ε)(1+h))`-bicriteria
//! approximation.
//!
//! # Example
//!
//! ```
//! use hgp::core::solver::SolverOptions;
//! use hgp::core::{Instance, Solve};
//! use hgp::graph::Graph;
//! use hgp::hierarchy::presets;
//!
//! // two producer/consumer pairs with a light cross edge
//! let g = Graph::from_edges(4, &[(0, 1, 9.0), (2, 3, 9.0), (1, 2, 0.5)]);
//! let inst = Instance::new(g, vec![0.6, 0.6, 0.6, 0.6]);
//! // 2 sockets x 2 cores, cross-socket traffic 4x as expensive
//! let machine = presets::multicore(2, 2, 4.0, 1.0);
//!
//! let opts = SolverOptions::builder().trees(2).units(8).build();
//! let report = Solve::new(&inst, &machine).options(opts).run().unwrap();
//!
//! // each heavy pair lands on a shared socket — here even a shared core,
//! // using the bicriteria capacity slack (1.2 load on a 1.0 core is well
//! // inside the (1+eps)(1+h) bound), which silences both 9.0 edges
//! assert_eq!(report.assignment.leaf(0) / 2, report.assignment.leaf(1) / 2);
//! assert_eq!(report.assignment.leaf(2) / 2, report.assignment.leaf(3) / 2);
//! assert!(report.cost <= 2.0, "only the light cross edge may pay");
//! // and nothing is oversubscribed beyond the paper's bound
//! assert!(report.violation.worst_factor() <= 2.0 * 3.0);
//! ```
//!
//! See the crate-level docs of [`core`], [`decomp`], [`baselines`] and the
//! `examples/` directory for the full tour.

pub use hgp_baselines as baselines;
pub use hgp_core as core;
pub use hgp_decomp as decomp;
pub use hgp_graph as graph;
pub use hgp_hierarchy as hierarchy;
pub use hgp_server as server;
pub use hgp_workloads as workloads;
